// Contract macros for domain invariants (paper §3.2: the agent must be
// safe — fail closed rather than compute on corrupted state).
//
// Policy (DESIGN.md §9.3):
//  - PINGMESH_CHECK(cond): always on, in every build type. Use for cheap
//    checks on boundaries crossed by untrusted or externally-derived data
//    (public API argument ranges, decoded sizes) and for invariants whose
//    violation would corrupt persisted data. Failure prints the expression
//    with file:line and aborts — fail-closed, never limp along.
//  - PINGMESH_DCHECK(cond): compiled out in NDEBUG builds unless
//    PINGMESH_FORCE_DCHECK is defined (the sanitizer configurations define
//    it, see the top-level CMakeLists). Use freely on hot paths — ring
//    indices, bucket math, prefix-max monotonicity — where the check is
//    per-record.
//
// Both evaluate `cond` exactly once when active; the inactive DCHECK does
// not evaluate it but still compiles it, so variables stay used and the
// expression keeps type-checking.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pingmesh::detail {

[[noreturn]] inline void check_failed(const char* file, int line, const char* expr,
                                      const char* msg) {
  // The one legitimate stderr write outside the logging backend: the
  // process is about to abort and the logger itself may be the component
  // whose invariant failed.
  std::fprintf(stderr, "PINGMESH_CHECK failed at %s:%d: %s%s%s\n",  // lint: allow(printf)
               file, line, expr, (msg != nullptr && msg[0] != '\0') ? " — " : "",
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace pingmesh::detail

#define PINGMESH_CHECK(cond)                                                      \
  (static_cast<bool>(cond)                                                        \
       ? static_cast<void>(0)                                                     \
       : ::pingmesh::detail::check_failed(__FILE__, __LINE__, #cond, ""))

#define PINGMESH_CHECK_MSG(cond, msg)                                             \
  (static_cast<bool>(cond)                                                        \
       ? static_cast<void>(0)                                                     \
       : ::pingmesh::detail::check_failed(__FILE__, __LINE__, #cond, (msg)))

#if defined(NDEBUG) && !defined(PINGMESH_FORCE_DCHECK)
// Dead branch keeps the expression compiled (odr-used) without evaluating it.
#define PINGMESH_DCHECK(cond) (false ? static_cast<void>(cond) : static_cast<void>(0))
#else
#define PINGMESH_DCHECK(cond) PINGMESH_CHECK(cond)
#endif

// SoakRunner — hours of simulated closed-loop self-healing under a seeded
// stream of random chaos plans (the paper's §5.1 loop, run continuously).
//
// Each episode generates a heal-focused chaos plan (always at least one
// partial ToR black-hole; spine drops, congestion and server crashes mixed
// in), runs it through the chaos engine with the HealingLoop attached, and
// joins the loop's incident timelines against the injected events to
// measure the loop itself:
//
//   MTTD   mean(first streaming trigger - injection) over matched
//          black-holes;
//   MTTR   mean(recovery - injection) over incidents whose triggering
//          alerts closed after repair;
//   false reloads      executed reloads on switches the plan never
//                      black-holed (must be zero — reloads cost budget and
//                      reboot production gear);
//   missed repairs     injected black-holes with no executed repair within
//                      the deadline (must be zero);
//   deferred repairs   budget-parked reloads, surfaced rather than lost;
//   SLA before/after   pair success rate in the corroboration window vs.
//                      the post-recovery window.
//
// The report is a pure function of (seed, config): every count derives from
// integer event joins and rates print with fixed precision, so to_json() is
// byte-identical at any worker count — bench_soak pins that, and
// check_perf.py gates the MTTD/MTTR/false-reload/missed-repair ceilings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/engine.h"
#include "chaos/plan.h"
#include "common/types.h"

namespace pingmesh::heal {

struct SoakConfig {
  std::uint64_t seed = 1;
  int episodes = 4;                       ///< sequential chaos plans
  SimTime episode_duration = minutes(30); ///< chaos window per episode
  int worker_threads = 1;
  /// Base SimulationConfig for every episode; null = chaos_test_config.
  const core::SimulationConfig* base_config = nullptr;
};

/// Heal-focused random plan: `heal on`, one guaranteed catchable partial
/// ToR black-hole, plus a seeded mix of spine drops, congestion, server
/// crashes and benign noise. Pure function of (seed, duration).
chaos::ChaosPlan generate_soak_plan(std::uint64_t seed, SimTime duration = minutes(30));

struct SoakEpisode {
  std::uint64_t plan_seed = 0;
  std::size_t events = 0;
  int injected_blackholes = 0;
  int repaired_blackholes = 0;
  bool invariants_ok = true;
};

struct SoakReport {
  std::uint64_t seed = 0;
  int episodes = 0;
  SimTime sim_time = 0;  ///< total simulated time across episodes
  std::uint64_t total_probes = 0;

  // Loop activity.
  std::uint64_t triggers = 0;
  int incidents = 0;
  int reloads = 0;
  int rmas = 0;
  int escalations = 0;
  int expired = 0;   ///< triggers that deliberately got no action
  int recovered = 0;

  // The gates.
  int injected_blackholes = 0;
  int unrepaired_blackholes = 0;  ///< missed repairs; CI gate: 0
  int false_reloads = 0;          ///< reloads on never-black-holed switches; CI gate: 0
  int deferred_executed = 0;      ///< budget-parked reloads later executed
  int deferred_pending = 0;       ///< still parked at episode end (surfaced, not lost)
  int reload_budget_per_day = 0;

  // Timeliness (ns sums over integer joins; seconds derived at print time).
  SimTime mttd_sum = 0;
  int mttd_n = 0;
  SimTime mttr_sum = 0;
  int mttr_n = 0;

  // SLA conformance around repair.
  double sla_before_sum = 0.0;
  double sla_after_sum = 0.0;
  int sla_n = 0;

  bool invariants_ok = true;
  std::vector<SoakEpisode> episode_details;

  [[nodiscard]] double mttd_seconds() const {
    return mttd_n ? to_seconds(mttd_sum) / mttd_n : 0.0;
  }
  [[nodiscard]] double mttr_seconds() const {
    return mttr_n ? to_seconds(mttr_sum) / mttr_n : 0.0;
  }

  /// Deterministic renderings: byte-identical at any worker count.
  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] std::string to_json() const;
};

/// Run `config.episodes` sequential generated plans and aggregate the
/// closed-loop metrics. Deterministic function of (config).
SoakReport run_soak(const SoakConfig& config);

}  // namespace pingmesh::heal

#include "heal/loop.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>

#include "obs/observability.h"

namespace pingmesh::heal {

namespace {

constexpr const char* kSilentPairRule = "stream:silent_pair";
constexpr const char* kFailRateRule = "stream:fail_rate";
constexpr const char* kDropSpikeRule = "stream:drop_spike";

bool blackhole_shaped(const std::string& rule) {
  return rule == kSilentPairRule || rule == kFailRateRule;
}

std::string format_rate2(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", r);
  return buf;
}

}  // namespace

const char* incident_state_name(IncidentState s) {
  switch (s) {
    case IncidentState::kCorroborated: return "corroborated";
    case IncidentState::kRepaired: return "repaired";
    case IncidentState::kRecovered: return "recovered";
    case IncidentState::kEscalated: return "escalated";
    case IncidentState::kExpired: return "expired";
  }
  return "?";
}

const char* incident_action_name(IncidentAction a) {
  switch (a) {
    case IncidentAction::kNone: return "none";
    case IncidentAction::kReload: return "reload";
    case IncidentAction::kIsolateRma: return "isolate-rma";
    case IncidentAction::kEscalate: return "escalate";
  }
  return "?";
}

std::string Incident::to_line() const {
  std::string out = "incident " + std::to_string(id);
  out += " state=" + std::string(incident_state_name(state));
  out += " action=" + std::string(incident_action_name(action));
  out += " switch=" + (sw.valid() ? std::to_string(sw.value) : std::string("-"));
  out += " detect=" + std::to_string(detect) + "ns";
  out += " corroborate=" + std::to_string(corroborate) + "ns";
  out += " repair=" + std::to_string(repair) + "ns";
  out += " recover=" + std::to_string(recover) + "ns";
  if (deferred) out += " deferred";
  if (escalated_rma) out += " escalated-rma";
  out += " triggers=" + std::to_string(triggers.size());
  if (sla_before >= 0.0) out += " sla_before=" + format_rate2(sla_before);
  if (sla_after >= 0.0) out += " sla_after=" + format_rate2(sla_after);
  if (!note.empty()) out += " note=" + note;
  return out;
}

HealingLoop::HealingLoop(core::PingmeshSimulation& sim, HealConfig config)
    : sim_(&sim), config_(config) {
  // Full black-holes must stay attributable: victims never succeed but keep
  // uploading failure records over the management plane.
  config_.blackhole.reporting_liveness = true;
  const topo::Topology& topo = sim.topology();
  for (const topo::Pod& pod : topo.pods()) {
    pod_by_tor_name_[topo.sw(pod.tor).name] = pod.id;
  }
  for (const topo::Server& s : topo.servers()) pod_by_ip_[s.ip] = s.pod;
}

void HealingLoop::attach() {
  sim_->scheduler().schedule_every(config_.poll_period, [this](SimTime now) {
    tick(now);
    return true;
  });
}

void HealingLoop::tick(SimTime now) {
  drain_alerts(now);
  stamp_deferred_repairs(sim_->repair().retry_deferred(now), now);
  corroborate(now);
  expire_pending(now);
  check_recovery(now);
  finish_sla(now);
}

std::optional<std::pair<PodId, PodId>> HealingLoop::parse_pair_scope(
    const std::string& scope) const {
  // OnlineDetector scopes pair alerts as "pair <src-tor-name>-><dst-tor-name>".
  constexpr std::string_view kPrefix = "pair ";
  if (scope.rfind(kPrefix, 0) != 0) return std::nullopt;
  std::string_view rest = std::string_view(scope).substr(kPrefix.size());
  std::size_t arrow = rest.find("->");
  if (arrow == std::string_view::npos) return std::nullopt;
  auto src = pod_by_tor_name_.find(std::string(rest.substr(0, arrow)));
  auto dst = pod_by_tor_name_.find(std::string(rest.substr(arrow + 2)));
  if (src == pod_by_tor_name_.end() || dst == pod_by_tor_name_.end()) return std::nullopt;
  return std::make_pair(src->second, dst->second);
}

bool HealingLoop::trigger_absorbed(const std::string& scope, const std::string& rule) const {
  for (const PendingTrigger& p : pending_) {
    if (p.scope == scope && p.rule == rule) return true;
  }
  // An alert row re-opened for a scope already folded into a live incident
  // is the same episode still unfolding, not a new trigger.
  for (const Incident& inc : incidents_) {
    if (inc.state == IncidentState::kRecovered || inc.state == IncidentState::kExpired) {
      continue;
    }
    for (const auto& [s, r] : inc.triggers) {
      if (s == scope && r == rule) return true;
    }
  }
  return false;
}

void HealingLoop::drain_alerts(SimTime now) {
  (void)now;
  const auto& alerts = sim_->db().alerts;
  obs::Observability* obs = sim_->observability();
  for (; alert_hw_ < alerts.size(); ++alert_hw_) {
    const dsa::AlertRow& row = alerts[alert_hw_];
    if (!blackhole_shaped(row.rule) && row.rule != kDropSpikeRule) continue;
    if (trigger_absorbed(row.scope, row.rule)) continue;
    PendingTrigger t;
    t.scope = row.scope;
    t.rule = row.rule;
    t.first_seen = row.time;
    if (auto pods = parse_pair_scope(row.scope)) {
      t.src = pods->first;
      t.dst = pods->second;
    }
    pending_.push_back(std::move(t));
    ++triggers_seen_;
    if (obs != nullptr) obs->metrics().counter("heal.triggers_total").inc();
  }
}

void HealingLoop::stamp_deferred_repairs(const std::vector<SwitchId>& reloaded, SimTime now) {
  obs::Observability* obs = sim_->observability();
  for (SwitchId sw : reloaded) {
    for (Incident& inc : incidents_) {
      if (inc.sw == sw && inc.state == IncidentState::kCorroborated && inc.repair == 0) {
        inc.repair = now;
        inc.state = IncidentState::kRepaired;
        inc.note += inc.note.empty() ? "deferred reload executed" : "; deferred reload executed";
        if (obs != nullptr) obs->metrics().counter("heal.reloads_total").inc();
        break;
      }
    }
  }
}

double HealingLoop::pair_success_rate(const Incident& inc, SimTime from, SimTime to) const {
  std::set<std::uint32_t> pods;
  for (const auto& [scope, rule] : inc.triggers) {
    (void)rule;
    if (auto pp = parse_pair_scope(scope)) {
      pods.insert(pp->first.value);
      pods.insert(pp->second.value);
    }
  }
  if (pods.empty()) return -1.0;
  std::uint64_t total = 0;
  std::uint64_t ok = 0;
  for (const agent::LatencyRecord& r : sim_->records_between(from, to)) {
    auto src = pod_by_ip_.find(r.src_ip);
    auto dst = pod_by_ip_.find(r.dst_ip);
    bool involved = (src != pod_by_ip_.end() && pods.contains(src->second.value)) ||
                    (dst != pod_by_ip_.end() && pods.contains(dst->second.value));
    if (!involved) continue;
    ++total;
    if (r.success) ++ok;
  }
  if (total == 0) return -1.0;
  return static_cast<double>(ok) / static_cast<double>(total);
}

bool HealingLoop::symptom_current(PodId pod,
                                  const std::vector<agent::LatencyRecord>& records,
                                  SimTime now) const {
  SimTime from = now > config_.symptom_recency ? now - config_.symptom_recency : 0;
  int failures = 0;
  for (const agent::LatencyRecord& r : records) {
    if (r.timestamp < from || r.success) continue;
    auto src = pod_by_ip_.find(r.src_ip);
    auto dst = pod_by_ip_.find(r.dst_ip);
    bool involved = (src != pod_by_ip_.end() && src->second == pod) ||
                    (dst != pod_by_ip_.end() && dst->second == pod);
    if (involved && ++failures >= config_.min_recent_failures) return true;
  }
  return false;
}

Incident& HealingLoop::open_incident(IncidentState state, IncidentAction action,
                                                  std::vector<PendingTrigger> matched,
                                                  SimTime now) {
  Incident inc;
  inc.id = incidents_.size() + 1;
  inc.state = state;
  inc.action = action;
  inc.corroborate = now;
  inc.detect = now;
  for (const PendingTrigger& t : matched) {
    inc.detect = std::min(inc.detect, t.first_seen);
    inc.triggers.emplace_back(t.scope, t.rule);
  }
  incidents_.push_back(std::move(inc));
  obs::Observability* obs = sim_->observability();
  if (obs != nullptr) obs->metrics().counter("heal.incidents_total").inc();
  return incidents_.back();
}

void HealingLoop::corroborate(SimTime now) {
  if (pending_.empty()) return;
  const topo::Topology& topo = sim_->topology();
  obs::Observability* obs = sim_->observability();
  SimTime from = now > config_.corroborate_lookback ? now - config_.corroborate_lookback : 0;
  std::vector<agent::LatencyRecord> records = sim_->records_between(from, now);

  bool any_blackhole = false;
  bool any_dropspike = false;
  for (const PendingTrigger& t : pending_) {
    if (blackhole_shaped(t.rule)) any_blackhole = true;
    if (t.rule == kDropSpikeRule) any_dropspike = true;
  }

  // Consume matched pending triggers; survivors stay for the next tick.
  auto take_matching = [this](auto&& pred) {
    std::vector<PendingTrigger> matched;
    std::vector<PendingTrigger> rest;
    for (PendingTrigger& t : pending_) {
      if (pred(t)) matched.push_back(std::move(t));
      else rest.push_back(std::move(t));
    }
    pending_ = std::move(rest);
    return matched;
  };

  if (any_blackhole) {
    analysis::BlackholeDetector detector(config_.blackhole);
    analysis::BlackholeReport report = detector.detect(records, topo);

    for (const analysis::TorScore& cand : report.candidates) {
      // The lookback can span a fault that already cleared (a crashed
      // server that came back fills the window with stale failures). Only
      // act while the symptom is current; stale triggers stay pending and
      // expire at the deadline.
      if (!symptom_current(cand.pod, records, now)) continue;
      auto matched = take_matching([&](const PendingTrigger& t) {
        return blackhole_shaped(t.rule) && (t.src == cand.pod || t.dst == cand.pod);
      });
      if (matched.empty()) continue;  // batch candidate without a streaming trigger

      // A switch already reloaded that re-corroborates after the cooldown:
      // the reload did not fix it; escalate to isolate + RMA (§5.1). A
      // recovered incident also stays authoritative while the batch
      // lookback still spans its pre-repair failures — re-blame from those
      // stale records must not open a duplicate incident (and burn a second
      // reload); genuine recurrence re-corroborates once they age out.
      Incident* live = nullptr;
      for (Incident& inc : incidents_) {
        if (inc.sw != cand.tor) continue;
        if (inc.state == IncidentState::kCorroborated ||
            inc.state == IncidentState::kRepaired ||
            (inc.state == IncidentState::kRecovered &&
             now - inc.recover < config_.corroborate_lookback)) {
          live = &inc;
          break;
        }
      }
      if (live != nullptr) {
        for (const PendingTrigger& t : matched) live->triggers.emplace_back(t.scope, t.rule);
        if (live->state == IncidentState::kRepaired && live->action == IncidentAction::kReload &&
            !live->escalated_rma && now - live->repair >= config_.reload_cooldown) {
          sim_->repair().isolate_and_rma(
              cand.tor, "heal: black-hole persists after reload on " + topo.sw(cand.tor).name,
              now);
          live->escalated_rma = true;
          live->action = IncidentAction::kIsolateRma;
          live->repair = now;
          live->note += live->note.empty() ? "reload ineffective, RMA"
                                           : "; reload ineffective, RMA";
          if (obs != nullptr) obs->metrics().counter("heal.rma_total").inc();
        }
        continue;
      }

      Incident& inc = open_incident(IncidentState::kCorroborated, IncidentAction::kReload,
                                    std::move(matched), now);
      inc.sw = cand.tor;
      inc.sla_before = pair_success_rate(inc, from, now);
      bool executed = sim_->repair().request_reload(
          cand.tor, "heal: black-hole corroborated on " + topo.sw(cand.tor).name, now);
      if (executed) {
        inc.repair = now;
        inc.state = IncidentState::kRepaired;
        if (obs != nullptr) obs->metrics().counter("heal.reloads_total").inc();
      } else {
        inc.deferred = true;
        if (obs != nullptr) obs->metrics().counter("heal.deferred_total").inc();
      }
    }

    // Podset-wide symptom: the fault sits above the ToR layer — notify,
    // never auto-reload. Sorted for a deterministic incident order.
    std::vector<std::uint32_t> escalations;
    for (PodsetId ps : report.escalations) escalations.push_back(ps.value);
    std::sort(escalations.begin(), escalations.end());
    for (std::uint32_t ps : escalations) {
      auto matched = take_matching([&](const PendingTrigger& t) {
        if (!blackhole_shaped(t.rule)) return false;
        bool src_in = t.src.valid() && topo.pod(t.src).podset.value == ps;
        bool dst_in = t.dst.valid() && topo.pod(t.dst).podset.value == ps;
        return src_in || dst_in;
      });
      if (matched.empty()) continue;
      Incident& inc = open_incident(IncidentState::kEscalated, IncidentAction::kEscalate,
                                    std::move(matched), now);
      inc.note = "podset " + std::to_string(ps) + " wide: Leaf/Spine suspected, engineers notified";
      if (obs != nullptr) obs->metrics().counter("heal.escalations_total").inc();
    }
  }

  if (any_dropspike) {
    analysis::SilentDropLocalizer localizer(config_.silent_drop);
    analysis::SilentDropReport report = localizer.localize(records, topo, sim_->net(), now);
    if (report.culprit.valid() && report.culprit_loss >= config_.silent_drop.culprit_min_loss) {
      auto matched = take_matching(
          [&](const PendingTrigger& t) { return t.rule == kDropSpikeRule; });
      Incident* live = nullptr;
      for (Incident& inc : incidents_) {
        if (inc.sw == report.culprit && inc.action == IncidentAction::kIsolateRma &&
            inc.state != IncidentState::kRecovered) {
          live = &inc;
          break;
        }
      }
      if (live != nullptr) {
        for (const PendingTrigger& t : matched) live->triggers.emplace_back(t.scope, t.rule);
      } else if (!matched.empty()) {
        Incident& inc = open_incident(IncidentState::kCorroborated, IncidentAction::kIsolateRma,
                                      std::move(matched), now);
        inc.sw = report.culprit;
        inc.sla_before = pair_success_rate(inc, from, now);
        sim_->repair().isolate_and_rma(
            report.culprit,
            "heal: silent drops pinpointed on " + topo.sw(report.culprit).name +
                " (loss " + format_rate2(report.culprit_loss) + ")",
            now);
        inc.repair = now;
        inc.state = IncidentState::kRepaired;
        if (obs != nullptr) obs->metrics().counter("heal.rma_total").inc();
      }
    }
  }
}

void HealingLoop::expire_pending(SimTime now) {
  std::vector<PendingTrigger> expired;
  std::vector<PendingTrigger> rest;
  for (PendingTrigger& t : pending_) {
    if (now - t.first_seen >= config_.corroborate_deadline) expired.push_back(std::move(t));
    else rest.push_back(std::move(t));
  }
  pending_ = std::move(rest);
  if (expired.empty()) return;
  Incident& inc = open_incident(IncidentState::kExpired, IncidentAction::kNone,
                                std::move(expired), now);
  inc.corroborate = 0;
  inc.note = "never corroborated by the batch path: transient, no action";
  obs::Observability* obs = sim_->observability();
  if (obs != nullptr) obs->metrics().counter("heal.expired_total").inc();
}

void HealingLoop::check_recovery(SimTime now) {
  const dsa::Database& db = sim_->db();
  obs::Observability* obs = sim_->observability();
  for (Incident& inc : incidents_) {
    if (inc.state != IncidentState::kRepaired) continue;
    bool all_closed = true;
    for (const auto& [scope, rule] : inc.triggers) {
      if (db.alert_open(scope, rule)) {
        all_closed = false;
        break;
      }
    }
    if (!all_closed) continue;
    inc.recover = now;
    inc.state = IncidentState::kRecovered;
    if (obs != nullptr) obs->metrics().counter("heal.recovered_total").inc();
    record_timeline(inc);
  }
}

void HealingLoop::finish_sla(SimTime now) {
  for (Incident& inc : incidents_) {
    if (inc.state != IncidentState::kRecovered || inc.sla_after >= 0.0) continue;
    if (now < inc.recover + config_.sla_post_window) continue;
    inc.sla_after = pair_success_rate(inc, inc.recover, inc.recover + config_.sla_post_window);
  }
}

void HealingLoop::record_timeline(const Incident& inc) {
  obs::Observability* obs = sim_->observability();
  if (obs == nullptr || !obs->tracer().enabled()) return;
  std::string note = std::string(incident_action_name(inc.action)) +
                     (inc.sw.valid() ? " sw " + std::to_string(inc.sw.value) : "");
  SimTime corroborate = inc.corroborate > 0 ? inc.corroborate : inc.detect;
  obs->tracer().span(inc.id, "heal.detect", inc.detect, corroborate, note);
  if (inc.repair > 0) {
    obs->tracer().span(inc.id, "heal.repair", corroborate, inc.repair, note);
    if (inc.recover > 0) {
      obs->tracer().span(inc.id, "heal.recover", inc.repair, inc.recover, note);
    }
  }
}

}  // namespace pingmesh::heal

// HealingLoop — the closed loop of paper §5.1, wired end to end:
//
//   streaming detection -> batch corroboration -> blame -> repair -> verify
//
// The OnlineDetector (streaming fast path) opens `stream:*` alerts within
// tens of seconds of a fault; the loop treats each as a *trigger*, never as
// blame. Before any repair fires, the trigger must be corroborated by the
// batch-path localizer over raw records — the BlackholeDetector's greedy
// set-cover for black-hole-shaped triggers (silent_pair / fail_rate), the
// SilentDropLocalizer's traceroute pinpointing for drop-rate spikes. Only a
// corroborated, switch-attributed blame reaches the RepairService:
//
//   - ToR black-hole candidate  -> budgeted reload (clears TCAM/ECMP);
//   - spine silent-drop culprit -> isolate + RMA (reload cannot fix it);
//   - podset-wide escalation    -> humans notified, NO automatic repair;
//   - trigger never corroborated within the deadline (transient congestion,
//     noise) -> expires with no action.
//
// A reload that does not stick — the same switch re-corroborates after a
// cooldown — escalates to isolate + RMA, matching the paper's observation
// that some faults "cannot be fixed by switch reload".
//
// Every incident carries a timeline (detect -> corroborate -> repair ->
// recover) recorded against virtual time; recovery is declared when every
// triggering streaming alert has closed again. The soak harness
// (heal/soak.h) joins these timelines against the injected chaos plan to
// compute MTTD/MTTR and false-repair counts.
//
// Threading/determinism: the loop runs entirely on the driver thread as a
// recurring scheduler event, reads only committed state (database alert
// rows, scannable records), and iterates vectors in insertion order — its
// incident log is byte-stable at any worker count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/blackhole.h"
#include "analysis/silentdrop.h"
#include "common/types.h"
#include "core/simulation.h"

namespace pingmesh::heal {

struct HealConfig {
  /// Loop cadence (alert drain + corroboration + recovery checks).
  SimTime poll_period = seconds(30);
  /// Record window handed to the batch localizers at corroboration time.
  SimTime corroborate_lookback = minutes(5);
  /// A trigger not corroborated within this window expires with no action
  /// (the transient-congestion path).
  SimTime corroborate_deadline = minutes(10);
  /// A repaired switch re-corroborating after this cooldown escalates from
  /// reload to isolate+RMA (the reload did not fix it).
  SimTime reload_cooldown = minutes(4);
  /// A black-hole candidate is only actionable while its pod's pairs are
  /// still failing within this much of "now": the corroboration lookback
  /// can span a fault that already cleared (e.g. a crashed server that came
  /// back), and acting on stale evidence reloads healthy gear.
  SimTime symptom_recency = seconds(60);
  /// Minimum failed probes in the recency window to call a symptom current.
  int min_recent_failures = 2;
  /// Post-recovery SLA window: success rate over the incident's pairs in
  /// [recover, recover + window), compared against the pre-repair rate.
  SimTime sla_post_window = minutes(4);
  /// Batch corroborators. `blackhole.reporting_liveness` is forced on: the
  /// loop must attribute *full* black-holes, whose victims never succeed
  /// but keep uploading failures over the management plane.
  analysis::BlackholeConfig blackhole;
  analysis::SilentDropConfig silent_drop;
};

enum class IncidentState : std::uint8_t {
  kCorroborated,  ///< blame confirmed; repair requested (may be deferred)
  kRepaired,      ///< repair executed, waiting for alerts to close
  kRecovered,     ///< every triggering alert closed after repair
  kEscalated,     ///< podset-wide symptom: humans notified, no auto repair
  kExpired,       ///< trigger never corroborated: deliberate no-action
};

enum class IncidentAction : std::uint8_t { kNone, kReload, kIsolateRma, kEscalate };

const char* incident_state_name(IncidentState s);
const char* incident_action_name(IncidentAction a);

/// One closed-loop episode: from first streaming trigger to recovery (or to
/// a deliberate non-action). Times are 0 when the stage was not reached.
struct Incident {
  std::uint64_t id = 0;  ///< 1-based, in creation order
  SwitchId sw;           ///< blamed switch; invalid for escalate/expire
  IncidentState state = IncidentState::kCorroborated;
  IncidentAction action = IncidentAction::kNone;
  SimTime detect = 0;       ///< earliest triggering alert open time
  SimTime corroborate = 0;  ///< batch localizer confirmed the blame
  SimTime repair = 0;       ///< repair executed (not merely requested)
  SimTime recover = 0;      ///< all triggering alerts closed
  bool deferred = false;    ///< repair waited on the daily reload budget
  bool escalated_rma = false;  ///< reload did not stick; escalated to RMA
  /// (scope, rule) of every streaming alert folded into this incident.
  std::vector<std::pair<std::string, std::string>> triggers;
  std::string note;
  double sla_before = -1.0;  ///< pair success rate in the corroboration window
  double sla_after = -1.0;   ///< pair success rate in the post-recovery window

  [[nodiscard]] std::string to_line() const;  ///< deterministic one-line form
};

class HealingLoop {
 public:
  /// Binds to `sim` (which must outlive the loop). Call attach() before
  /// run_for to install the recurring tick, or drive tick() manually.
  HealingLoop(core::PingmeshSimulation& sim, HealConfig config = {});

  void attach();
  void tick(SimTime now);

  [[nodiscard]] const std::vector<Incident>& incidents() const { return incidents_; }
  [[nodiscard]] std::uint64_t triggers_seen() const { return triggers_seen_; }
  [[nodiscard]] std::size_t pending_triggers() const { return pending_.size(); }
  [[nodiscard]] const HealConfig& config() const { return config_; }

 private:
  struct PendingTrigger {
    std::string scope;
    std::string rule;
    SimTime first_seen = 0;
    PodId src;  ///< parsed from the pair scope; invalid when unparseable
    PodId dst;
  };

  void drain_alerts(SimTime now);
  void stamp_deferred_repairs(const std::vector<SwitchId>& reloaded, SimTime now);
  void corroborate(SimTime now);
  void expire_pending(SimTime now);
  void check_recovery(SimTime now);
  void finish_sla(SimTime now);

  [[nodiscard]] bool trigger_absorbed(const std::string& scope, const std::string& rule) const;
  [[nodiscard]] std::optional<std::pair<PodId, PodId>> parse_pair_scope(
      const std::string& scope) const;
  [[nodiscard]] double pair_success_rate(const Incident& inc, SimTime from, SimTime to) const;
  [[nodiscard]] bool symptom_current(PodId pod,
                                     const std::vector<agent::LatencyRecord>& records,
                                     SimTime now) const;
  Incident& open_incident(IncidentState state, IncidentAction action,
                          std::vector<PendingTrigger> matched, SimTime now);
  void record_timeline(const Incident& inc);

  core::PingmeshSimulation* sim_;
  HealConfig config_;
  std::unordered_map<std::string, PodId> pod_by_tor_name_;
  std::unordered_map<IpAddr, PodId> pod_by_ip_;
  std::size_t alert_hw_ = 0;  ///< high-water mark into db().alerts
  std::size_t repair_hw_ = 0; ///< high-water mark into repair().history()
  std::vector<PendingTrigger> pending_;
  std::vector<Incident> incidents_;
  std::uint64_t triggers_seen_ = 0;
};

}  // namespace pingmesh::heal

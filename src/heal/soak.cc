#include "heal/soak.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "chaos/injector.h"
#include "common/rng.h"
#include "core/scenarios.h"
#include "topology/topology.h"

namespace pingmesh::heal {

namespace {

/// Salt for deriving per-episode plan seeds from the soak seed.
constexpr std::uint64_t kSoakSalt = 0x50A4C0DEu;

std::string fmt3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

chaos::ChaosPlan generate_soak_plan(std::uint64_t seed, SimTime duration) {
  Rng rng(mix_key(seed, kSoakSalt));
  chaos::ChaosPlan plan;
  plan.seed = seed;
  plan.duration = duration;
  plan.settle = duration / 3;
  plan.heal = true;

  auto window = [&rng, duration](SimTime earliest, SimTime min_len, SimTime jitter) {
    SimTime start = earliest + seconds(rng.uniform_u32(
                                   static_cast<std::uint32_t>(jitter / kNanosPerSecond)));
    SimTime end = std::min<SimTime>(
        start + min_len + seconds(rng.uniform_u32(6 * 60)), duration);
    return std::pair<SimTime, SimTime>{start, end};
  };

  // Always one catchable partial ToR black-hole: strong enough for the
  // streaming fail-rate rule, active well past the repair deadline, started
  // after the streaming windows have warmed up.
  chaos::ChaosEvent bh;
  bh.kind = chaos::ChaosEventKind::kTorBlackhole;
  bh.entity = rng.uniform_u32(4096);
  bh.magnitude = rng.uniform(0.3, 0.6);
  auto [bs, be] = window(minutes(2), minutes(10), minutes(5));
  bh.start = bs;
  bh.end = be;
  plan.events.push_back(bh);

  if (rng.chance(0.25)) {
    // Occasionally a second black-hole on an independently drawn pod, so
    // soaks exercise multi-incident bookkeeping and the reload budget.
    chaos::ChaosEvent bh2 = bh;
    bh2.entity = rng.uniform_u32(4096);
    bh2.magnitude = rng.uniform(0.3, 0.6);
    auto [s2, e2] = window(minutes(4), minutes(10), minutes(6));
    bh2.start = s2;
    bh2.end = e2;
    plan.events.push_back(bh2);
  }
  if (rng.chance(0.3)) {
    chaos::ChaosEvent e;
    e.kind = chaos::ChaosEventKind::kSpineDrop;
    e.entity = rng.uniform_u32(4096);
    e.magnitude = rng.uniform(0.05, 0.15);
    auto [s, t] = window(minutes(3), minutes(8), minutes(6));
    e.start = s;
    e.end = t;
    plan.events.push_back(e);
  }
  if (rng.chance(0.4)) {
    // Transient congestion: the loop must deliberately do nothing.
    chaos::ChaosEvent e;
    e.kind = chaos::ChaosEventKind::kCongestion;
    e.entity = rng.uniform_u32(4096);
    e.magnitude = rng.uniform(0.05, 0.3);
    auto [s, t] = window(minutes(3), minutes(3), minutes(8));
    e.start = s;
    e.end = t;
    plan.events.push_back(e);
  }
  if (rng.chance(0.3)) {
    // A crashed server must not be blamed on its ToR (liveness exclusion).
    chaos::ChaosEvent e;
    e.kind = chaos::ChaosEventKind::kServerCrash;
    e.entity = rng.uniform_u32(4096);
    auto [s, t] = window(minutes(3), minutes(4), minutes(8));
    e.start = s;
    e.end = t;
    plan.events.push_back(e);
  }
  return plan;
}

SoakReport run_soak(const SoakConfig& config) {
  SoakReport rep;
  rep.seed = config.seed;
  rep.episodes = config.episodes;

  core::SimulationConfig base = config.base_config != nullptr
                                    ? *config.base_config
                                    : core::chaos_test_config(config.seed);
  rep.reload_budget_per_day = base.repair.max_reloads_per_day;
  // The joins below need event -> switch resolution on the episode
  // topology; every episode shares the base topology shape.
  topo::Topology topo = topo::Topology::build(base.dcs);

  chaos::ChaosRunOptions opts;
  opts.worker_threads = config.worker_threads;
  opts.base_config = config.base_config;

  for (int i = 0; i < config.episodes; ++i) {
    std::uint64_t plan_seed = mix_key(config.seed, kSoakSalt,
                                      static_cast<std::uint64_t>(i));
    chaos::ChaosPlan plan = generate_soak_plan(plan_seed, config.episode_duration);
    chaos::ChaosRunResult result = chaos::run_plan(plan, opts);

    SoakEpisode ep;
    ep.plan_seed = plan.seed;
    ep.events = plan.events.size();
    ep.invariants_ok = result.ok();
    rep.invariants_ok = rep.invariants_ok && result.ok();
    rep.sim_time += plan.duration + plan.settle;
    rep.total_probes += result.total_probes;

    const chaos::HealChaosOutcome& heal = result.heal;
    rep.triggers += heal.triggers_seen;
    rep.incidents += static_cast<int>(heal.incidents.size());
    rep.reloads += static_cast<int>(heal.reloads_executed);
    rep.rmas += static_cast<int>(heal.rmas_executed);
    rep.deferred_executed += static_cast<int>(heal.deferred_executed);
    rep.deferred_pending += static_cast<int>(heal.deferred_pending);
    for (const chaos::HealIncidentSummary& inc : heal.incidents) {
      if (inc.state == "escalated") ++rep.escalations;
      if (inc.state == "expired") ++rep.expired;
      if (inc.state == "recovered") ++rep.recovered;
      if (inc.sla_before >= 0.0 && inc.sla_after >= 0.0) {
        rep.sla_before_sum += inc.sla_before;
        rep.sla_after_sum += inc.sla_after;
        ++rep.sla_n;
      }
    }

    // Join injected black-holes against the loop's incidents.
    std::set<std::uint32_t> blackholed;
    for (const chaos::ChaosEvent& e : plan.events) {
      if (e.kind != chaos::ChaosEventKind::kTorBlackhole) continue;
      blackholed.insert(chaos::resolve_event_switch(topo, e).value);
    }
    for (const chaos::ChaosEvent& e : plan.events) {
      if (e.kind != chaos::ChaosEventKind::kTorBlackhole) continue;
      ++rep.injected_blackholes;
      ++ep.injected_blackholes;
      SwitchId sw = chaos::resolve_event_switch(topo, e);
      // Prefer the first incident detected at/after this injection; fall
      // back to any incident on the switch (re-injection into a pod whose
      // prior incident is still open folds into that incident).
      const chaos::HealIncidentSummary* match = nullptr;
      for (const chaos::HealIncidentSummary& inc : heal.incidents) {
        if (inc.sw != sw) continue;
        if (inc.detect >= e.start &&
            (match == nullptr || match->detect < e.start || inc.detect < match->detect)) {
          match = &inc;
        } else if (match == nullptr) {
          match = &inc;
        }
      }
      bool repaired = match != nullptr && match->repair > 0 &&
                      match->repair <= e.start + chaos::kHealRepairDeadline;
      if (repaired) {
        ++ep.repaired_blackholes;
      } else {
        ++rep.unrepaired_blackholes;
      }
      if (match != nullptr && match->detect >= e.start) {
        rep.mttd_sum += match->detect - e.start;
        ++rep.mttd_n;
        if (match->recover > match->detect) {
          rep.mttr_sum += match->recover - e.start;
          ++rep.mttr_n;
        }
      }
    }
    // A reload (including one later escalated to RMA) on a switch the plan
    // never black-holed burned budget and rebooted healthy gear.
    for (const chaos::HealIncidentSummary& inc : heal.incidents) {
      bool did_reload = inc.repair > 0 &&
                        (inc.action == "reload" || inc.escalated_rma);
      if (did_reload && !blackholed.contains(inc.sw.value)) ++rep.false_reloads;
    }

    rep.episode_details.push_back(ep);
  }
  return rep;
}

std::string SoakReport::to_text() const {
  std::string out;
  out += "soak seed=" + std::to_string(seed) + " episodes=" + std::to_string(episodes) +
         " sim-minutes=" + fmt3(to_seconds(sim_time) / 60.0) +
         " probes=" + std::to_string(total_probes) + "\n";
  out += "loop: triggers=" + std::to_string(triggers) +
         " incidents=" + std::to_string(incidents) + " reloads=" + std::to_string(reloads) +
         " rmas=" + std::to_string(rmas) + " escalations=" + std::to_string(escalations) +
         " expired=" + std::to_string(expired) + " recovered=" + std::to_string(recovered) +
         "\n";
  out += "blackholes: injected=" + std::to_string(injected_blackholes) +
         " unrepaired=" + std::to_string(unrepaired_blackholes) +
         " false-reloads=" + std::to_string(false_reloads) + " (budget " +
         std::to_string(reload_budget_per_day) + "/day)\n";
  out += "deferred: executed=" + std::to_string(deferred_executed) +
         " pending=" + std::to_string(deferred_pending) + "\n";
  out += "mttd=" + fmt3(mttd_seconds()) + "s (" + std::to_string(mttd_n) + " samples) mttr=" +
         fmt3(mttr_seconds()) + "s (" + std::to_string(mttr_n) + " samples)\n";
  if (sla_n > 0) {
    out += "sla: before=" + fmt3(sla_before_sum / sla_n) +
           " after=" + fmt3(sla_after_sum / sla_n) + " (" + std::to_string(sla_n) +
           " incidents)\n";
  }
  out += std::string("invariants: ") + (invariants_ok ? "OK" : "VIOLATED") + "\n";
  for (const SoakEpisode& ep : episode_details) {
    out += "  episode seed=" + std::to_string(ep.plan_seed) +
           " events=" + std::to_string(ep.events) +
           " blackholes=" + std::to_string(ep.injected_blackholes) + "/" +
           std::to_string(ep.repaired_blackholes) + " repaired invariants=" +
           (ep.invariants_ok ? "OK" : "VIOLATED") + "\n";
  }
  return out;
}

std::string SoakReport::to_json() const {
  std::string out = "{\n";
  auto add_u = [&out](const char* k, std::uint64_t v, bool comma = true) {
    out += std::string("  \"") + k + "\": " + std::to_string(v) + (comma ? ",\n" : "\n");
  };
  auto add_d = [&out](const char* k, double v, bool comma = true) {
    out += std::string("  \"") + k + "\": " + fmt3(v) + (comma ? ",\n" : "\n");
  };
  add_u("seed", seed);
  add_u("episodes", static_cast<std::uint64_t>(episodes));
  add_d("sim_minutes", to_seconds(sim_time) / 60.0);
  add_u("total_probes", total_probes);
  add_u("triggers", triggers);
  add_u("incidents", static_cast<std::uint64_t>(incidents));
  add_u("reloads", static_cast<std::uint64_t>(reloads));
  add_u("rmas", static_cast<std::uint64_t>(rmas));
  add_u("escalations", static_cast<std::uint64_t>(escalations));
  add_u("expired", static_cast<std::uint64_t>(expired));
  add_u("recovered", static_cast<std::uint64_t>(recovered));
  add_u("injected_blackholes", static_cast<std::uint64_t>(injected_blackholes));
  add_u("unrepaired_blackholes", static_cast<std::uint64_t>(unrepaired_blackholes));
  add_u("false_reloads", static_cast<std::uint64_t>(false_reloads));
  add_u("reload_budget_per_day", static_cast<std::uint64_t>(reload_budget_per_day));
  add_u("deferred_executed", static_cast<std::uint64_t>(deferred_executed));
  add_u("deferred_pending", static_cast<std::uint64_t>(deferred_pending));
  add_d("mttd_s", mttd_seconds());
  add_u("mttd_samples", static_cast<std::uint64_t>(mttd_n));
  add_d("mttr_s", mttr_seconds());
  add_u("mttr_samples", static_cast<std::uint64_t>(mttr_n));
  add_d("sla_before", sla_n ? sla_before_sum / sla_n : -1.0);
  add_d("sla_after", sla_n ? sla_after_sum / sla_n : -1.0);
  out += std::string("  \"invariants_ok\": ") + (invariants_ok ? "true" : "false") + "\n";
  out += "}\n";
  return out;
}

}  // namespace pingmesh::heal

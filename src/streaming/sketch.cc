#include "streaming/sketch.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.h"

namespace pingmesh::streaming {

LatencySketch::LatencySketch() : LatencySketch(Config{}) {}

LatencySketch::LatencySketch(Config cfg) : cfg_(cfg) {
  if (!(cfg_.relative_error > 0.0) || !(cfg_.relative_error < 0.5)) {
    throw std::invalid_argument("LatencySketch relative_error must be in (0, 0.5)");
  }
  if (cfg_.min_value_ns <= 0 || cfg_.max_value_ns <= cfg_.min_value_ns) {
    throw std::invalid_argument("LatencySketch requires 0 < min_value < max_value");
  }
  double gamma = (1.0 + cfg_.relative_error) / (1.0 - cfg_.relative_error);
  double log2_gamma = std::log2(gamma);
  inv_log2_gamma_ = 1.0 / log2_gamma;
  log2_min_ = std::log2(static_cast<double>(cfg_.min_value_ns));
  rel_error_bound_ = std::sqrt(gamma) - 1.0;
  // Buckets covering [min, max) at gamma^k boundaries, plus one overflow
  // bucket for values >= max.
  double span = std::log2(static_cast<double>(cfg_.max_value_ns)) - log2_min_;
  auto regular = static_cast<std::size_t>(std::ceil(span * inv_log2_gamma_));
  counts_.assign(regular + 1, 0);
  PINGMESH_CHECK_MSG(counts_.size() >= 2, "sketch needs at least one regular bucket");
}

std::size_t LatencySketch::bucket_index(std::int64_t value) const {
  if (value <= cfg_.min_value_ns) return 0;
  double pos = (std::log2(static_cast<double>(value)) - log2_min_) * inv_log2_gamma_;
  PINGMESH_DCHECK(pos >= 0.0);
  auto idx = static_cast<std::size_t>(pos);
  return idx < counts_.size() - 1 ? idx : counts_.size() - 1;
}

std::int64_t LatencySketch::bucket_representative(std::size_t idx) const {
  if (idx >= counts_.size() - 1) return cfg_.max_value_ns;  // saturating top
  // Geometric midpoint of [min * gamma^idx, min * gamma^(idx+1)): the value
  // whose worst-case ratio against any bucket member is sqrt(gamma).
  double lo = std::exp2(log2_min_ + static_cast<double>(idx) / inv_log2_gamma_);
  return static_cast<std::int64_t>(lo * (1.0 + rel_error_bound_));
}

void LatencySketch::record(std::int64_t value_ns, std::uint64_t count) {
  if (count == 0) return;
  if (value_ns < 1) value_ns = 1;
  std::size_t idx = bucket_index(value_ns);
  PINGMESH_DCHECK(idx < counts_.size());
  counts_[idx] += count;
  total_ += count;
  sum_ += static_cast<double>(value_ns) * static_cast<double>(count);
  observed_min_ = std::min(observed_min_, value_ns);
  observed_max_ = std::max(observed_max_, value_ns);
}

void LatencySketch::merge(const LatencySketch& other) {
  if (!mergeable_with(other)) {
    throw std::invalid_argument("LatencySketch geometry mismatch in merge");
  }
  PINGMESH_DCHECK(counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ += other.sum_;
  if (other.total_ > 0) {
    observed_min_ = std::min(observed_min_, other.observed_min_);
    observed_max_ = std::max(observed_max_, other.observed_max_);
  }
}

std::int64_t LatencySketch::quantile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  auto target = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_)));
  if (target == 0) target = 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= target) {
      return std::clamp(bucket_representative(i), observed_min_, observed_max_);
    }
  }
  return observed_max_;
}

bool LatencySketch::restore_state(const std::vector<std::uint64_t>& counts,
                                  std::uint64_t total, double sum,
                                  std::int64_t observed_min, std::int64_t observed_max) {
  if (counts.size() != counts_.size()) return false;
  std::uint64_t check = 0;
  for (std::uint64_t c : counts) {
    if (c > total - check) return false;  // overflow-safe: sum stays <= total
    check += c;
  }
  if (check != total) return false;
  if (total == 0) {
    if (observed_min != std::numeric_limits<std::int64_t>::max() ||
        observed_max != std::numeric_limits<std::int64_t>::min()) {
      return false;
    }
  } else if (observed_min < 1 || observed_max < observed_min) {
    return false;  // record() clamps values to >= 1
  }
  if (!(sum >= 0.0) || (total == 0 && sum != 0.0)) return false;  // rejects NaN too
  counts_ = counts;
  total_ = total;
  sum_ = sum;
  observed_min_ = observed_min;
  observed_max_ = observed_max;
  return true;
}

void LatencySketch::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
  observed_min_ = std::numeric_limits<std::int64_t>::max();
  observed_max_ = std::numeric_limits<std::int64_t>::min();
}

}  // namespace pingmesh::streaming

// LatencySketch — a mergeable quantile sketch with a *bounded relative
// error*, the data structure underneath the streaming analytics path
// (paper §5 lessons-learned: "moving towards streaming"; see also
// "Scalable Tail Latency Estimation for Data Center Networks": fast
// approximate tail estimates beat full-fidelity batch aggregation for
// online detection).
//
// Design (DDSketch-style): geometric buckets at gamma^k boundaries with
// gamma = (1 + alpha) / (1 - alpha). A bucket's representative value is its
// geometric midpoint, so any quantile estimate q' satisfies
//
//     |q' - q| <= (sqrt(gamma) - 1) * q  ~=  alpha * q
//
// for the true bucketed sample q (for alpha <= 0.05 the bound
// sqrt(gamma) - 1 is within 3% of alpha itself; we document the error as
// `relative_error_bound()`, the exact sqrt(gamma) - 1 value).
//
// Properties the streaming pipeline relies on:
//  - fixed memory decided at construction (no allocation on record/merge
//    /clear — the hot ingest path stays allocation-free after warm-up);
//  - O(buckets) merge that is associative and commutative: merging
//    per-server or per-sub-window sketches equals sketching the union;
//  - identical rank convention to LatencyHistogram (target rank
//    ceil(q * count), representative clamped to the observed min/max), so
//    streaming and batch quantiles over the same samples differ only by
//    the two sketches' bucket resolutions.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.h"

namespace pingmesh::streaming {

class LatencySketch {
 public:
  struct Config {
    /// Target relative accuracy alpha of quantile estimates, in (0, 0.5).
    double relative_error = 0.01;
    /// Values below this clamp into the first bucket (default 1 us).
    std::int64_t min_value_ns = 1'000;
    /// Values at or above this clamp into the last bucket. The default
    /// covers every clean RTT plus the 3 s / 9 s retransmit band.
    std::int64_t max_value_ns = 60 * kNanosPerSecond;

    [[nodiscard]] bool operator==(const Config& o) const {
      return relative_error == o.relative_error && min_value_ns == o.min_value_ns &&
             max_value_ns == o.max_value_ns;
    }
  };

  LatencySketch();  // default Config (1% error, 1 us .. 60 s)
  explicit LatencySketch(Config cfg);

  void record(std::int64_t value_ns) { record(value_ns, 1); }
  void record(std::int64_t value_ns, std::uint64_t count);

  /// Merge another sketch with identical geometry. O(bucket_count), no
  /// allocation; associative and commutative.
  void merge(const LatencySketch& other);

  /// Quantile in [0, 1]; representative value of the bucket holding the
  /// ceil(q * count)-th ranked sample, clamped to the observed range.
  /// 0 when empty.
  [[nodiscard]] std::int64_t quantile(double q) const;
  [[nodiscard]] std::int64_t p50() const { return quantile(0.50); }
  [[nodiscard]] std::int64_t p99() const { return quantile(0.99); }
  [[nodiscard]] std::int64_t p999() const { return quantile(0.999); }

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::int64_t min() const { return total_ ? observed_min_ : 0; }
  [[nodiscard]] std::int64_t max() const { return total_ ? observed_max_ : 0; }
  [[nodiscard]] double mean() const {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }

  /// Reset to empty without touching the bucket layout (no allocation).
  void clear();

  // -- state round-trips (serve rollup persistence) --------------------------
  /// Raw bucket counts, for serialization. The layout is fully determined
  /// by Config, so counts alone (plus the scalars below) round-trip the
  /// sketch exactly — quantiles, mean, and merges are all preserved.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  /// Raw running sum (serialization counterpart of mean()).
  [[nodiscard]] double sum() const { return sum_; }
  /// observed min/max as stored — sentinel extremes when empty, unlike the
  /// public min()/max() which report 0. Serialization must keep sentinels.
  [[nodiscard]] std::int64_t observed_min_raw() const { return observed_min_; }
  [[nodiscard]] std::int64_t observed_max_raw() const { return observed_max_; }
  /// Restore state previously captured through the accessors above. The
  /// input is validated as untrusted (persisted segments cross a disk
  /// boundary): bucket count must match this sketch's geometry, the counts
  /// must sum to `total` without overflow, and min/max must be a plausible
  /// observed range (exact sentinels when total == 0). Returns false and
  /// leaves the sketch unchanged on any mismatch.
  [[nodiscard]] bool restore_state(const std::vector<std::uint64_t>& counts,
                                   std::uint64_t total, double sum,
                                   std::int64_t observed_min, std::int64_t observed_max);

  [[nodiscard]] const Config& config() const { return cfg_; }
  /// The documented worst-case relative error, sqrt(gamma) - 1 (~alpha).
  [[nodiscard]] double relative_error_bound() const { return rel_error_bound_; }
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t memory_bytes() const {
    return counts_.capacity() * sizeof(std::uint64_t) + sizeof(*this);
  }
  /// Two sketches can be merged iff their configs are identical.
  [[nodiscard]] bool mergeable_with(const LatencySketch& other) const {
    return cfg_ == other.cfg_;
  }

 private:
  [[nodiscard]] std::size_t bucket_index(std::int64_t value) const;
  [[nodiscard]] std::int64_t bucket_representative(std::size_t idx) const;

  Config cfg_;
  double inv_log2_gamma_ = 0.0;  // 1 / log2(gamma)
  double log2_min_ = 0.0;        // log2(min_value_ns)
  double rel_error_bound_ = 0.0;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  std::int64_t observed_min_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t observed_max_ = std::numeric_limits<std::int64_t>::min();
};

}  // namespace pingmesh::streaming

// OnlineDetector — sub-minute alerting over the sliding-window aggregates.
//
// Evaluated every few seconds against WindowedAggregator snapshots, it fires
// into the same Database::alerts surface the PA and SCOPE paths use, one to
// two orders of magnitude sooner than the 10-min batch job (whose end-to-end
// freshness is ~20 minutes, paper §3.5) and well under the PA path's 5-min
// cadence. Four rules, matching the failure classes of §4–§5:
//
//  - latency boost: windowed *median* RTT above a multiplicative EWMA
//    baseline (baseline frozen while breaching, so an incident cannot
//    absorb itself into the baseline). The median, not the P99: a pair's
//    sub-minute window holds tens of samples, so its P99 is the max sample
//    and routine queueing spikes would page constantly. Sustained median
//    elevation is the congestion shape; precise tail alerting belongs to
//    the large-aggregate SCOPE path (same division of labor as the PA
//    path's drop-rate-only rule);
//  - drop-signature spike: the §4.2 estimator (3 s / 9 s SYN-loss
//    signatures over successes) over the live window, with the same
//    signature floor the PA path uses against small-window noise;
//  - silent pair: probes flowing but no connect landing for `silent_after`
//    — the blackhole shape (deterministic SYN loss produces failures, not
//    retransmit signatures). Judged against the pair's lifetime
//    last-success time, not the windowed success count, so detection does
//    not wait for pre-fault successes to age out of the ring;
//  - failure rate: a sustained fraction of connects failing outright —
//    the *partial* blackhole shape (a corrupted-TCAM fraction < 1 kills a
//    subset of server pairs 100% while the rest of the pod pair stays
//    healthy, so neither silent-pair nor drop-spike fires). The threshold
//    mirrors the batch localizer's per-pair blackness bar, and a failure
//    floor keeps one crashed server in a large pod below the rule.
//
// Hysteresis + dedup: a rule must breach `open_after` consecutive
// evaluations to open, and an open (scope, rule) suppresses further rows
// until `close_after` consecutive clean evaluations close it — a persistent
// fault yields exactly one AlertRow, not one per evaluation (shared
// open-alert registry in dsa::Database; the PA path uses the same registry).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/types.h"
#include "dsa/database.h"
#include "streaming/window.h"
#include "topology/topology.h"

namespace pingmesh::streaming {

struct DetectorConfig {
  SimTime eval_period = seconds(10);  ///< cadence the driver ticks evaluate()

  // Latency-boost rule (windowed median vs learned baseline).
  double latency_boost_factor = 3.0;  ///< open when p50 > factor * baseline
  SimTime latency_abs_floor = millis(1);  ///< and p50 above this absolute floor
  double ewma_weight = 0.2;           ///< baseline <- w * p50 + (1-w) * baseline

  // Drop-spike rule (mirrors the PA path's thresholds).
  double drop_rate_threshold = 1e-3;
  std::uint64_t min_drop_signatures = 3;

  // Silent-pair rule.
  std::uint64_t silent_min_probes = 6;  ///< window probes before "silent" is trusted
  SimTime silent_after = seconds(30);   ///< open when now - last success exceeds this

  // Failure-rate rule (partial-blackhole shape).
  double fail_rate_threshold = 0.15;     ///< windowed connect-failure fraction
  std::uint64_t min_failures = 8;        ///< absolute failure floor per window

  std::uint64_t min_probes = 6;  ///< window probes before any metric is trusted
  int open_after = 2;   ///< consecutive breaching evaluations to open
  int close_after = 3;  ///< consecutive clean evaluations to close
};

class OnlineDetector {
 public:
  OnlineDetector(const topo::Topology& topo, dsa::Database& db, DetectorConfig cfg = {});

  /// Evaluate every live pair window; appends deduplicated AlertRows.
  /// Returns the number of alerts newly opened this evaluation.
  int evaluate(const WindowedAggregator& windows, SimTime now);

  [[nodiscard]] std::uint64_t evaluations() const { return evaluations_; }
  [[nodiscard]] std::uint64_t alerts_opened() const { return opened_; }
  [[nodiscard]] std::uint64_t alerts_closed() const { return closed_; }
  [[nodiscard]] const DetectorConfig& config() const { return cfg_; }

 private:
  enum Rule : std::size_t {
    kLatencyBoost = 0,
    kDropSpike = 1,
    kSilentPair = 2,
    kFailRate = 3,
    kRuleCount
  };

  struct PairTrack {
    double p50_baseline = 0.0;
    bool baseline_init = false;
    int breach_streak[kRuleCount] = {};
    int clean_streak[kRuleCount] = {};
  };

  static const char* rule_name(Rule r);
  [[nodiscard]] std::string pair_scope(PodId src, PodId dst) const;
  /// Advance one rule's hysteresis; fires/clears through the database's
  /// open-alert registry. Returns 1 if an alert was newly opened.
  int step_rule(PairTrack& track, Rule rule, bool breach, const std::string& scope,
                dsa::AlertSeverity severity, double value, const std::string& message,
                SimTime now);

  const topo::Topology* topo_;
  dsa::Database* db_;
  DetectorConfig cfg_;
  std::unordered_map<std::uint64_t, PairTrack> tracks_;
  std::uint64_t evaluations_ = 0;
  std::uint64_t opened_ = 0;
  std::uint64_t closed_ = 0;
};

}  // namespace pingmesh::streaming

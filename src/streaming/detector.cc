#include "streaming/detector.h"

#include <algorithm>

#include "common/stats.h"

namespace pingmesh::streaming {

OnlineDetector::OnlineDetector(const topo::Topology& topo, dsa::Database& db,
                               DetectorConfig cfg)
    : topo_(&topo), db_(&db), cfg_(cfg) {}

const char* OnlineDetector::rule_name(Rule r) {
  switch (r) {
    case kLatencyBoost: return "stream:latency_boost";
    case kDropSpike: return "stream:drop_spike";
    case kSilentPair: return "stream:silent_pair";
    case kFailRate: return "stream:fail_rate";
    default: return "stream:?";
  }
}

std::string OnlineDetector::pair_scope(PodId src, PodId dst) const {
  auto name = [this](PodId p) {
    return p.value < topo_->pods().size() ? topo_->sw(topo_->pod(p).tor).name
                                          : "#" + std::to_string(p.value);
  };
  return "pair " + name(src) + "->" + name(dst);
}

int OnlineDetector::step_rule(PairTrack& track, Rule rule, bool breach,
                              const std::string& scope, dsa::AlertSeverity severity,
                              double value, const std::string& message, SimTime now) {
  if (breach) {
    track.clean_streak[rule] = 0;
    if (++track.breach_streak[rule] < cfg_.open_after) return 0;
    if (!db_->open_alert(scope, rule_name(rule), now)) return 0;  // already open
    dsa::AlertRow a;
    a.time = now;
    a.severity = severity;
    a.rule = rule_name(rule);
    a.scope = scope;
    a.value = value;
    a.message = message;
    db_->alerts.push_back(std::move(a));
    ++opened_;
    return 1;
  }
  track.breach_streak[rule] = 0;
  if (++track.clean_streak[rule] >= cfg_.close_after) {
    if (db_->close_alert(scope, rule_name(rule))) ++closed_;
  }
  return 0;
}

int OnlineDetector::evaluate(const WindowedAggregator& windows, SimTime now) {
  ++evaluations_;
  int fired = 0;
  for (const WindowedAggregator::PairWindow& pw : windows.snapshot(now)) {
    const WindowStats& s = pw.stats;
    if (s.probes < cfg_.min_probes) continue;
    PairTrack& track = tracks_[(static_cast<std::uint64_t>(pw.src_pod.value) << 32) |
                               pw.dst_pod.value];
    std::string scope = pair_scope(pw.src_pod, pw.dst_pod);

    // Silent pair: probes flowing, no connect landing for silent_after
    // (blackhole shape). Lifetime last-success, not the windowed success
    // count: detection must not wait for pre-fault successes to age out of
    // the ring (that alone would cost the whole horizon).
    std::optional<SimTime> last_ok = windows.last_success(pw.src_pod, pw.dst_pod);
    bool silent = s.probes >= cfg_.silent_min_probes &&
                  (!last_ok.has_value() || now - *last_ok >= cfg_.silent_after);
    fired += step_rule(track, kSilentPair, silent, scope, dsa::AlertSeverity::kCritical,
                       s.failure_rate(),
                       "no successful probe since " +
                           (last_ok ? std::to_string(to_seconds(*last_ok)) + "s" : "boot") +
                           " (" + std::to_string(s.probes) + " probes in live window)",
                       now);

    // Failure rate: the partial-blackhole shape. A corrupted entry fraction
    // below 1 kills a subset of the pod pair's server pairs deterministically
    // while the rest keep succeeding, so the pair is neither silent nor
    // spiking retransmit signatures — but its windowed connect-failure
    // fraction sits at the corrupted fraction. The absolute failure floor
    // keeps a single crashed server in a small pod below the rule; the
    // silent guard keeps total loss owned by silent_pair alone instead of
    // double-alerting the same fault under two rules.
    bool fail_rate = !silent && s.failures >= cfg_.min_failures &&
                     s.failure_rate() >= cfg_.fail_rate_threshold;
    fired += step_rule(track, kFailRate, fail_rate, scope, dsa::AlertSeverity::kCritical,
                       s.failure_rate(),
                       "connect failure rate " + format_rate(s.failure_rate()) + " (" +
                           std::to_string(s.failures) + "/" + std::to_string(s.probes) +
                           " probes) over live window",
                       now);

    // Drop-signature spike (§4.2 estimator, PA-style signature floor).
    bool drop_spike = s.drop_signatures() >= cfg_.min_drop_signatures &&
                      s.drop_rate() > cfg_.drop_rate_threshold;
    fired += step_rule(track, kDropSpike, drop_spike, scope, dsa::AlertSeverity::kCritical,
                       s.drop_rate(),
                       "drop rate " + format_rate(s.drop_rate()) + " over live window",
                       now);

    // Latency boost: windowed *median* vs EWMA baseline. The median, not
    // the tail — a sub-minute pair window holds tens of samples, so its P99
    // is the max sample and routine queueing spikes would page constantly.
    // Only clean samples carry latency.
    std::uint64_t clean = s.successes - std::min(s.successes, s.drop_signatures());
    if (clean > 0 && s.p50_ns > 0) {
      bool boost = false;
      if (track.baseline_init) {
        boost = static_cast<double>(s.p50_ns) >
                    cfg_.latency_boost_factor * track.p50_baseline &&
                s.p50_ns > cfg_.latency_abs_floor;
      }
      fired += step_rule(track, kLatencyBoost, boost, scope, dsa::AlertSeverity::kWarning,
                         static_cast<double>(s.p50_ns),
                         "P50 " + format_latency_ns(s.p50_ns) + " vs baseline " +
                             format_latency_ns(static_cast<std::int64_t>(track.p50_baseline)),
                         now);
      // Baseline learns only from non-breaching windows: an incident must
      // not absorb itself into its own baseline.
      if (!boost) {
        if (!track.baseline_init) {
          track.p50_baseline = static_cast<double>(s.p50_ns);
          track.baseline_init = true;
        } else {
          track.p50_baseline = cfg_.ewma_weight * static_cast<double>(s.p50_ns) +
                               (1.0 - cfg_.ewma_weight) * track.p50_baseline;
        }
      }
    }
  }
  return fired;
}

}  // namespace pingmesh::streaming

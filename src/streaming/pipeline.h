// StreamingPipeline — the near-real-time analytics path, end to end.
//
// Taps LatencyRecord batches at upload time (dsa::RecordTap on the
// CosmosUploader: the moment an agent's upload lands, ~20 minutes before
// the batch SCOPE job would consume the same records), folds them into the
// sliding-window aggregator, and runs the online detector on a seconds
// cadence. The third data path of DESIGN.md §8, coexisting with the PA
// 5-min and SCOPE 10-min+ paths for availability (paper §3.5).
#pragma once

#include <memory>

#include "dsa/database.h"
#include "dsa/uploader.h"
#include "streaming/detector.h"
#include "streaming/window.h"
#include "topology/topology.h"

namespace pingmesh::streaming {

struct StreamingConfig {
  bool enabled = false;  ///< simulation wiring flag (off: zero overhead)
  WindowedAggregator::Config windows;
  DetectorConfig detector;
};

class StreamingPipeline final : public dsa::RecordTap {
 public:
  StreamingPipeline(const topo::Topology& topo, dsa::Database& db, StreamingConfig cfg)
      : cfg_(cfg), windows_(topo, cfg.windows), detector_(topo, db, cfg.detector) {}

  /// dsa::RecordTap: a record batch just landed in Cosmos.
  void on_records(const std::vector<agent::LatencyRecord>& batch, SimTime) override {
    for (const agent::LatencyRecord& r : batch) windows_.ingest(r);
  }

  /// Driver cadence (DetectorConfig::eval_period): run the online rules.
  /// Returns alerts newly opened.
  int tick(SimTime now) { return detector_.evaluate(windows_, now); }

  [[nodiscard]] const StreamingConfig& config() const { return cfg_; }
  [[nodiscard]] WindowedAggregator& windows() { return windows_; }
  [[nodiscard]] const WindowedAggregator& windows() const { return windows_; }
  [[nodiscard]] OnlineDetector& detector() { return detector_; }
  [[nodiscard]] const OnlineDetector& detector() const { return detector_; }

 private:
  StreamingConfig cfg_;
  WindowedAggregator windows_;
  OnlineDetector detector_;
};

}  // namespace pingmesh::streaming

// StreamingPipeline — the near-real-time analytics path, end to end.
//
// Taps LatencyRecord batches at upload time (dsa::RecordTap on the
// CosmosUploader: the moment an agent's upload lands, ~20 minutes before
// the batch SCOPE job would consume the same records), folds them into the
// sliding-window aggregator, and runs the online detector on a seconds
// cadence. The third data path of DESIGN.md §8, coexisting with the PA
// 5-min and SCOPE 10-min+ paths for availability (paper §3.5).
#pragma once

#include <memory>

#include "dsa/database.h"
#include "dsa/uploader.h"
#include "obs/trace.h"
#include "streaming/detector.h"
#include "streaming/window.h"
#include "topology/topology.h"

namespace pingmesh::streaming {

struct StreamingConfig {
  bool enabled = false;  ///< simulation wiring flag (off: zero overhead)
  WindowedAggregator::Config windows;
  DetectorConfig detector;
};

class StreamingPipeline final : public dsa::RecordTap {
 public:
  StreamingPipeline(const topo::Topology& topo, dsa::Database& db, StreamingConfig cfg)
      : cfg_(cfg), windows_(topo, cfg.windows), detector_(topo, db, cfg.detector) {}

  /// dsa::RecordTap: a record batch just landed in Cosmos.
  void on_records(const agent::RecordColumns& batch, SimTime now) override {
    for (std::size_t i = 0, n = batch.size(); i < n; ++i) {
      const agent::LatencyRecord r = batch.row(i);
      windows_.ingest(r);
      if (tracer_ != nullptr && tracer_->enabled()) {
        std::uint64_t key = obs::trace_key(r.timestamp, r.src_ip.v, r.dst_ip.v, r.src_port);
        if (tracer_->sampled(key)) {
          tracer_->span(key, "streaming.ingest", now, now,
                        "pairs=" + std::to_string(windows_.pair_count()));
        }
      }
    }
  }

  /// Attach the data-path tracer (nullptr to detach). Sampled records get a
  /// streaming.ingest span as they land in the sliding windows.
  void set_tracer(const obs::Tracer* tracer) { tracer_ = tracer; }

  /// Driver cadence (DetectorConfig::eval_period): run the online rules.
  /// Returns alerts newly opened.
  int tick(SimTime now) { return detector_.evaluate(windows_, now); }

  [[nodiscard]] const StreamingConfig& config() const { return cfg_; }
  [[nodiscard]] WindowedAggregator& windows() { return windows_; }
  [[nodiscard]] const WindowedAggregator& windows() const { return windows_; }
  [[nodiscard]] OnlineDetector& detector() { return detector_; }
  [[nodiscard]] const OnlineDetector& detector() const { return detector_; }

 private:
  StreamingConfig cfg_;
  WindowedAggregator windows_;
  OnlineDetector detector_;
  const obs::Tracer* tracer_ = nullptr;
};

}  // namespace pingmesh::streaming

#include "streaming/window.h"

#include <algorithm>
#include <stdexcept>

#include "agent/counters.h"
#include "common/check.h"

namespace pingmesh::streaming {

WindowedAggregator::WindowedAggregator(const topo::Topology& topo, Config cfg)
    : topo_(&topo), cfg_(cfg), scratch_(cfg.sketch) {
  if (cfg_.sub_window <= 0) throw std::invalid_argument("sub_window must be positive");
  if (cfg_.sub_window_count < 1 || cfg_.sub_window_count > 4096) {
    throw std::invalid_argument("sub_window_count out of range");
  }
}

void WindowedAggregator::ingest(const agent::LatencyRecord& r) {
  auto src = topo_->find_server_by_ip(r.src_ip);
  auto dst = topo_->find_server_by_ip(r.dst_ip);
  if (!src || !dst) {
    ++skipped_;
    return;
  }
  PodId src_pod = topo_->server(*src).pod;
  PodId dst_pod = topo_->server(*dst).pod;

  auto& slot = pairs_[key(src_pod, dst_pod)];
  if (slot == nullptr) {  // warm-up: the only allocation on the ingest path
    slot = std::make_unique<PairState>();
    slot->ring.reserve(static_cast<std::size_t>(cfg_.sub_window_count));
    for (int i = 0; i < cfg_.sub_window_count; ++i) slot->ring.emplace_back(cfg_.sketch);
  }
  PairState& pair = *slot;

  SimTime ts = std::max<SimTime>(r.timestamp, 0);
  SimTime window_start = ts - ts % cfg_.sub_window;
  auto idx = static_cast<std::size_t>((ts / cfg_.sub_window) %
                                      cfg_.sub_window_count);
  PINGMESH_DCHECK(idx < pair.ring.size());
  PINGMESH_DCHECK(window_start >= 0 && window_start % cfg_.sub_window == 0);
  SubWindow& sub = pair.ring[idx];
  if (sub.start != window_start) {
    if (sub.start != kUnset && sub.start > window_start) {
      // The slot already advanced past this record's window: older than the
      // retained horizon, drop rather than pollute a newer sub-window.
      ++late_dropped_;
      return;
    }
    // Recycling a previously-filled slot is the moment its old sub-window
    // leaves the retained horizon.
    if (sub.start != kUnset) ++expiries_;
    sub.reset(window_start);
  }

  ++ingested_;
  ++pair.lifetime_probes;
  pair.last_probe_ts = std::max(pair.last_probe_ts, ts);
  ++sub.probes;
  if (!r.success) {
    ++sub.failures;
    return;
  }
  pair.last_success_ts = std::max(pair.last_success_ts, ts);
  ++sub.successes;
  // Identical classification to the batch LatencyAggregator: retransmit
  // artifacts count as drop signatures, never as latency samples.
  switch (agent::syn_drop_signature(r.rtt)) {
    case 1:
      ++sub.probes_3s;
      break;
    case 2:
      ++sub.probes_9s;
      break;
    default:
      sub.sketch.record(r.rtt);
  }
}

const WindowedAggregator::PairState* WindowedAggregator::find(PodId src, PodId dst) const {
  auto it = pairs_.find(key(src, dst));
  return it == pairs_.end() ? nullptr : it->second.get();
}

std::optional<WindowStats> WindowedAggregator::merge_range(const PairState& pair,
                                                           SimTime from, SimTime to) const {
  WindowStats out;
  out.window_start = from;
  out.window_end = to;
  scratch_.clear();
  for (const SubWindow& sub : pair.ring) {
    if (sub.start == kUnset || sub.start < from || sub.start >= to) continue;
    // Every populated sub-window sits on a sub_window boundary; ingest
    // rounds timestamps down before writing.
    PINGMESH_DCHECK(sub.start % cfg_.sub_window == 0);
    out.probes += sub.probes;
    out.successes += sub.successes;
    out.failures += sub.failures;
    out.probes_3s += sub.probes_3s;
    out.probes_9s += sub.probes_9s;
    scratch_.merge(sub.sketch);
  }
  out.p50_ns = scratch_.p50();
  out.p99_ns = scratch_.p99();
  out.p999_ns = scratch_.p999();
  return out;
}

std::optional<WindowStats> WindowedAggregator::query(PodId src, PodId dst,
                                                     SimTime now) const {
  SimTime newest_start = now - now % cfg_.sub_window;
  SimTime from = newest_start - cfg_.sub_window * (cfg_.sub_window_count - 1);
  return query_range(src, dst, from, newest_start + cfg_.sub_window);
}

std::optional<WindowStats> WindowedAggregator::query_range(PodId src, PodId dst,
                                                           SimTime from, SimTime to) const {
  const PairState* pair = find(src, dst);
  if (pair == nullptr) return std::nullopt;
  // Round outward to sub-window boundaries.
  from -= ((from % cfg_.sub_window) + cfg_.sub_window) % cfg_.sub_window;
  if (to % cfg_.sub_window != 0) to += cfg_.sub_window - to % cfg_.sub_window;
  return merge_range(*pair, from, to);
}

std::vector<WindowedAggregator::PairWindow> WindowedAggregator::snapshot(SimTime now) const {
  std::vector<PairWindow> out;
  out.reserve(pairs_.size());
  for (const auto& [k, pair] : pairs_) {
    PodId src{static_cast<std::uint32_t>(k >> 32)};
    PodId dst{static_cast<std::uint32_t>(k & 0xffffffffu)};
    auto stats = query(src, dst, now);
    if (!stats || stats->probes == 0) continue;
    out.push_back(PairWindow{src, dst, *stats});
  }
  std::sort(out.begin(), out.end(), [](const PairWindow& a, const PairWindow& b) {
    return a.src_pod == b.src_pod ? a.dst_pod < b.dst_pod : a.src_pod < b.src_pod;
  });
  return out;
}

std::optional<SimTime> WindowedAggregator::last_success(PodId src, PodId dst) const {
  const PairState* pair = find(src, dst);
  if (pair == nullptr || pair->last_success_ts == kUnset) return std::nullopt;
  return pair->last_success_ts;
}

std::optional<SimTime> WindowedAggregator::last_probe(PodId src, PodId dst) const {
  const PairState* pair = find(src, dst);
  if (pair == nullptr || pair->last_probe_ts == kUnset) return std::nullopt;
  return pair->last_probe_ts;
}

std::size_t WindowedAggregator::memory_bytes() const {
  std::size_t per_pair = sizeof(PairState) +
                         static_cast<std::size_t>(cfg_.sub_window_count) *
                             (sizeof(SubWindow) + scratch_.memory_bytes());
  return sizeof(*this) + pairs_.size() * per_pair;
}

}  // namespace pingmesh::streaming

// WindowedAggregator — per-(src-pod, dst-pod) sliding-window latency/drop
// statistics with seconds-level freshness.
//
// The streaming pipeline's stateful core: each pod pair holds a ring of N
// sub-windows (width W), each carrying counters plus a LatencySketch of the
// clean connect RTTs. Records are bucketed by their *measurement* timestamp
// (not arrival time), so a window's content is exactly the record set the
// batch SCOPE job scans for the same interval — that equivalence is what the
// streaming-vs-batch cross-validation test asserts. Late arrivals within the
// retained horizon land in the right sub-window; arrivals older than the
// horizon are counted in `late_dropped()` and discarded.
//
// Memory/allocation contract: sub-window sketches are built once when a pair
// first appears (warm-up); advancing the ring clears a sub-window in place.
// After every active pair has been seen, ingest() allocates nothing.
//
// Threading: driver-thread only, like every DSA-side component (records
// arrive through the uploader tap, which runs in the serial drain phase of
// the fleet tick — see DESIGN.md §7).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "agent/record.h"
#include "common/types.h"
#include "streaming/sketch.h"
#include "topology/topology.h"

namespace pingmesh::streaming {

/// Merged statistics of one pod pair over a queried interval.
struct WindowStats {
  SimTime window_start = 0;
  SimTime window_end = 0;
  std::uint64_t probes = 0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  std::uint64_t probes_3s = 0;  ///< one-SYN-drop signatures
  std::uint64_t probes_9s = 0;  ///< two-SYN-drop signatures
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
  std::int64_t p999_ns = 0;

  [[nodiscard]] std::uint64_t drop_signatures() const { return probes_3s + probes_9s; }
  /// The paper's §4.2 estimator: signatures / successful probes.
  [[nodiscard]] double drop_rate() const {
    return successes ? static_cast<double>(drop_signatures()) / static_cast<double>(successes)
                     : 0.0;
  }
  /// Fraction of probes whose connect never completed (blackhole shape).
  [[nodiscard]] double failure_rate() const {
    return probes ? static_cast<double>(failures) / static_cast<double>(probes) : 0.0;
  }
};

class WindowedAggregator {
 public:
  struct Config {
    SimTime sub_window = seconds(10);  ///< ring slot width W
    int sub_window_count = 6;          ///< N slots; horizon = N * W
    /// Sketch geometry of every sub-window. Coarser than the agent default:
    /// 2% relative error keeps a pair's ring near 20 KB.
    LatencySketch::Config sketch{/*relative_error=*/0.02, /*min_value_ns=*/1'000,
                                 /*max_value_ns=*/16 * kNanosPerSecond};
  };

  struct PairWindow {
    PodId src_pod;
    PodId dst_pod;
    WindowStats stats;
  };

  WindowedAggregator(const topo::Topology& topo, Config cfg);

  /// Ingest one record, keyed to the sub-window of r.timestamp. Records
  /// whose src or dst IP is not a known server are skipped (mirrors the
  /// batch pod-pair job's filter).
  void ingest(const agent::LatencyRecord& r);

  /// Merged stats over the N live sub-windows as of `now` (the interval
  /// (floor(now/W)+1-N)*W .. (floor(now/W)+1)*W). nullopt for unseen pairs.
  [[nodiscard]] std::optional<WindowStats> query(PodId src, PodId dst, SimTime now) const;

  /// Merged stats over [from, to) — bounds are rounded outward to sub-window
  /// boundaries. Only sub-windows still retained contribute; nullopt for
  /// unseen pairs.
  [[nodiscard]] std::optional<WindowStats> query_range(PodId src, PodId dst, SimTime from,
                                                       SimTime to) const;

  /// Every pair with data in the live horizon, sorted by (src, dst) for
  /// deterministic iteration.
  [[nodiscard]] std::vector<PairWindow> snapshot(SimTime now) const;

  /// Measurement time of the last success / last probe seen for a pair over
  /// its whole lifetime (silent-pair detection). nullopt for unseen pairs.
  [[nodiscard]] std::optional<SimTime> last_success(PodId src, PodId dst) const;
  [[nodiscard]] std::optional<SimTime> last_probe(PodId src, PodId dst) const;

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] SimTime horizon() const {
    return cfg_.sub_window * cfg_.sub_window_count;
  }
  [[nodiscard]] std::size_t pair_count() const { return pairs_.size(); }
  [[nodiscard]] std::uint64_t records_ingested() const { return ingested_; }
  [[nodiscard]] std::uint64_t records_skipped() const { return skipped_; }
  [[nodiscard]] std::uint64_t late_dropped() const { return late_dropped_; }
  /// Sub-windows whose contents aged out of the horizon (slot recycled).
  [[nodiscard]] std::uint64_t window_expiries() const { return expiries_; }
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  static constexpr SimTime kUnset = std::numeric_limits<SimTime>::min();

  struct SubWindow {
    SimTime start = kUnset;
    std::uint64_t probes = 0;
    std::uint64_t successes = 0;
    std::uint64_t failures = 0;
    std::uint64_t probes_3s = 0;
    std::uint64_t probes_9s = 0;
    LatencySketch sketch;

    explicit SubWindow(const LatencySketch::Config& c) : sketch(c) {}
    void reset(SimTime new_start) {
      start = new_start;
      probes = successes = failures = probes_3s = probes_9s = 0;
      sketch.clear();
    }
  };

  struct PairState {
    std::vector<SubWindow> ring;
    SimTime last_probe_ts = kUnset;
    SimTime last_success_ts = kUnset;
    std::uint64_t lifetime_probes = 0;
  };

  static std::uint64_t key(PodId src, PodId dst) {
    return (static_cast<std::uint64_t>(src.value) << 32) | dst.value;
  }
  [[nodiscard]] const PairState* find(PodId src, PodId dst) const;
  [[nodiscard]] std::optional<WindowStats> merge_range(const PairState& p, SimTime from,
                                                       SimTime to) const;

  const topo::Topology* topo_;
  Config cfg_;
  std::unordered_map<std::uint64_t, std::unique_ptr<PairState>> pairs_;
  /// Scratch sketch reused by queries (driver-thread only, like the rest).
  mutable LatencySketch scratch_;
  std::uint64_t ingested_ = 0;
  std::uint64_t skipped_ = 0;
  std::uint64_t late_dropped_ = 0;
  std::uint64_t expiries_ = 0;
};

}  // namespace pingmesh::streaming

#!/usr/bin/env bash
# One-stop correctness gate: everything CI runs, in the same order, from a
# single command. Stages:
#
#   1. lint        — pingmesh_lint over src/ (layering DAG, determinism
#                    taint, lock discipline, hygiene rules; see
#                    tools/lint/lint.h for the catalog), plus the
#                    library-rule subset over tools/ and bench/
#   2. tier-1      — default build + full ctest suite (includes the corpus
#                    replay tests and the lint fixture tests), then an
#                    observability smoke (pingmeshctl metrics/trace must
#                    show the wired subsystems; DESIGN.md §10), a chaos
#                    replay smoke, and the self-healing soak smoke
#                    (pingmeshctl soak on the fixed CI seed; DESIGN.md §14)
#   3. asan        — tools/asan_check.sh (ASan+UBSan, full suite), then the
#                    chaos smoke on the sanitized build: replay a scripted
#                    plan from the corpus, and one random-plan hunt round
#                    against the planted fail-closed defect — the shrunken
#                    reproducer must replay to a violation (DESIGN.md §11)
#   4. tsan        — tools/tsan_check.sh (TSan, concurrency tests incl. the
#                    4-worker chaos determinism run)
#   5. fuzz smoke  — if the compiler supports -fsanitize=fuzzer (clang),
#                    build -DPINGMESH_FUZZ=ON and run each harness for
#                    FUZZ_SECONDS (default 60) starting from its corpus.
#                    Skipped with a notice under gcc.
#   6. clang-tidy  — if clang-tidy is installed, run the checked-in
#                    .clang-tidy config over compile_commands.json.
#                    Skipped with a notice otherwise.
#
# Usage: tools/check_all.sh [--fast]
#   --fast   stages 1–2 only (pre-commit loop)
#
# Environment:
#   FUZZ_SECONDS   per-harness fuzz budget in stage 5 (default 60)
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1
FUZZ_SECONDS=${FUZZ_SECONDS:-60}

banner() { printf '\n=== %s ===\n' "$*"; }

# --- 1. lint ---------------------------------------------------------------
banner "stage 1: pingmesh_lint"
cmake -B build -S . >/dev/null
cmake --build build -j --target pingmesh_lint >/dev/null
./build/tools/lint/pingmesh_lint src
# tools/ and bench/ are CLI/bench code, not library code: only the
# module-agnostic hygiene subset applies there.
./build/tools/lint/pingmesh_lint --preset=support tools bench

# --- 2. tier-1 build + tests ----------------------------------------------
banner "stage 2: tier-1 build + ctest"
cmake --build build -j
(cd build && ctest --output-on-failure -j"$(nproc)")

# --- 2b. observability smoke ------------------------------------------------
# The metrics exposition and the end-to-end trace must stay wired through
# the whole loop (DESIGN.md §10); an empty exposition here means a
# subsystem lost its enable_observability call.
banner "stage 2b: observability smoke"
./build/tools/pingmeshctl metrics --minutes 5 2>/dev/null \
  | grep -q 'agent.probes_total{result=ok}' \
  || { echo "pingmeshctl metrics lost the agent counters"; exit 1; }
./build/tools/pingmeshctl trace --minutes 15 --sample 16 2>/dev/null \
  | grep -q 'cosmos.append' \
  || { echo "pingmeshctl trace lost the data-path spans"; exit 1; }

# --- 2c. chaos replay smoke --------------------------------------------------
# A scripted plan from the corpus must replay clean (all invariants OK).
banner "stage 2c: chaos replay smoke"
./build/tools/pingmeshctl chaos run \
  --plan tests/corpus/chaos_plan/valid_open_ended.plan 2>/dev/null \
  | grep -q 'record-conservation: OK' \
  || { echo "chaos replay violated an invariant"; exit 1; }

# --- 2d. self-healing soak smoke ---------------------------------------------
# Closed-loop detection -> blame -> repair on the fixed CI seed (~2 sim-
# hours): exit 1 on any false reload, unrepaired black-hole, or invariant
# violation (DESIGN.md §14). The perf ceilings (MTTD/MTTR) and 1-vs-4-worker
# report identity are gated by bench_soak in CI's perf-smoke job.
banner "stage 2d: self-healing soak smoke"
./build/tools/pingmeshctl soak --seed 7 --episodes 4 --minutes 30 >/dev/null 2>&1 \
  || { echo "self-healing soak gate failed (rerun: pingmeshctl soak --seed 7)"; exit 1; }

if [[ "$FAST" == "1" ]]; then
  banner "--fast: skipping sanitizers, fuzz smoke, clang-tidy"
  exit 0
fi

# --- 3. ASan ---------------------------------------------------------------
banner "stage 3: ASan/UBSan"
tools/asan_check.sh

# --- 3b. chaos hunt smoke (ASan build) --------------------------------------
# One random-plan hunt round against the planted fail-closed defect: the
# hunter must find a violating plan, shrink it, and the minimal reproducer
# must replay to the same violation (exit 1) — all on the sanitized build.
banner "stage 3b: chaos hunt smoke (ASan build)"
CHAOS_MIN_PLAN=$(mktemp)
trap 'rm -f "$CHAOS_MIN_PLAN"' EXIT
./build-asan/tools/pingmeshctl chaos hunt --start-seed 1 --seeds 25 \
  --break fail-closed >"$CHAOS_MIN_PLAN" \
  || { echo "chaos hunt missed the planted fail-closed defect"; exit 1; }
if ./build-asan/tools/pingmeshctl chaos run --plan "$CHAOS_MIN_PLAN" \
    --break fail-closed >/dev/null 2>&1; then
  echo "shrunken reproducer no longer fails on replay"; exit 1
fi
./build-asan/tools/pingmeshctl chaos run --plan "$CHAOS_MIN_PLAN" >/dev/null \
  || { echo "reproducer fails even without the planted defect"; exit 1; }

# --- 4. TSan ---------------------------------------------------------------
banner "stage 4: TSan"
tools/tsan_check.sh

# --- 5. fuzz smoke ---------------------------------------------------------
banner "stage 5: fuzz smoke (${FUZZ_SECONDS}s per harness)"
cmake -B build-fuzz -S . -DPINGMESH_FUZZ=ON >/dev/null
cmake --build build-fuzz -j --target tools >/dev/null 2>&1 || cmake --build build-fuzz -j >/dev/null
if ls build-fuzz/tools/fuzz/fuzz_* >/dev/null 2>&1; then
  for harness in xml http scopeql cosmos_io chaos_plan; do
    bin="build-fuzz/tools/fuzz/fuzz_${harness}"
    if [[ -x "$bin" ]]; then
      echo "--- fuzz_${harness}"
      "$bin" -max_total_time="$FUZZ_SECONDS" "tests/corpus/${harness}"
    fi
  done
else
  echo "compiler lacks -fsanitize=fuzzer (gcc): fuzz smoke skipped;"
  echo "corpus replay already ran as ctests in stage 2."
fi

# --- 6. clang-tidy ---------------------------------------------------------
banner "stage 6: clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json is exported by the stage-1/2 configure.
  mapfile -t SOURCES < <(git ls-files 'src/*.cc' 'tools/lint/*.cc')
  clang-tidy -p build --quiet "${SOURCES[@]}"
else
  echo "clang-tidy not installed: skipped (config checked in as .clang-tidy)."
fi

banner "all stages passed"

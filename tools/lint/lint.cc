#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string_view>

namespace pingmesh::lint {

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Layer map: the module DAG from DESIGN.md. A module may include headers
// from modules with layer <= its own; intra-layer cross-includes are legal
// (dsa uses agent's record type) and the include-cycle rule catches any
// true cycle among them.
// ---------------------------------------------------------------------------

constexpr struct {
  const char* module;
  int layer;
} kLayers[] = {
    {"common", 0},    {"net", 1},       {"topology", 1}, {"netsim", 1},
    {"agent", 2},     {"controller", 2}, {"dsa", 2},      {"streaming", 2},
    {"analysis", 2},  {"obs", 2},       {"autopilot", 3}, {"core", 3},
    {"serve", 3},     {"chaos", 4},
};

// The serving tier is a leaf: it may read the measurement substrate but no
// src/ module may build on it (tools and bench live outside src/ and may).
// Enforced by the serve-boundary rule on top of the layer numbers above.
constexpr const char* kServeAllowedDeps[] = {
    "common", "net", "topology", "agent", "dsa", "streaming", "obs", "serve",
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `line` contains `name` as a standalone identifier (not a
/// substring of a longer identifier).
bool has_identifier(const std::string& line, std::string_view name) {
  std::size_t at = line.find(name);
  while (at != std::string::npos) {
    bool lhs_ok = at == 0 || !is_ident_char(line[at - 1]);
    std::size_t after = at + name.size();
    bool rhs_ok = after >= line.size() || !is_ident_char(line[after]);
    if (lhs_ok && rhs_ok) return true;
    at = line.find(name, at + 1);
  }
  return false;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

// ---------------------------------------------------------------------------
// Per-file model
// ---------------------------------------------------------------------------

struct SourceFile {
  std::string rel_path;
  std::string module;  ///< first path component ("" when the file sits at root)
  bool is_header = false;
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;  ///< comments/strings blanked
  struct Include {
    std::string path;
    int line;  ///< 1-based
  };
  std::vector<Include> includes;  ///< quoted includes only
  std::set<std::string> file_allowed;              ///< allow-file(...) rules
  std::map<int, std::set<std::string>> line_allowed;  ///< allow(...) per line
};

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(std::move(cur));
  return lines;
}

/// Parse `lint: allow(...)` / `lint: allow-file(...)` markers on one line.
void parse_suppressions(SourceFile& f, int line_no, const std::string& raw) {
  std::size_t at = raw.find("lint:");
  while (at != std::string::npos) {
    std::string_view rest = std::string_view(raw).substr(at + 5);
    rest = trim(rest);
    bool file_scope = false;
    if (rest.starts_with("allow-file(")) {
      file_scope = true;
      rest.remove_prefix(std::string_view("allow-file(").size());
    } else if (rest.starts_with("allow(")) {
      rest.remove_prefix(std::string_view("allow(").size());
    } else {
      at = raw.find("lint:", at + 5);
      continue;
    }
    auto close = rest.find(')');
    if (close == std::string_view::npos) break;
    std::string_view args = rest.substr(0, close);
    std::size_t pos = 0;
    while (pos <= args.size()) {
      auto comma = args.find(',', pos);
      std::string_view one =
          trim(args.substr(pos, comma == std::string_view::npos ? args.size() - pos
                                                                : comma - pos));
      if (!one.empty()) {
        if (file_scope) {
          f.file_allowed.emplace(one);
        } else {
          f.line_allowed[line_no].emplace(one);
        }
      }
      if (comma == std::string_view::npos) break;
      pos = comma + 1;
    }
    at = raw.find("lint:", at + 5);
  }
}

SourceFile load_file(const std::string& root, const std::string& rel_path) {
  SourceFile f;
  f.rel_path = rel_path;
  auto slash = rel_path.find('/');
  f.module = slash == std::string::npos ? std::string() : rel_path.substr(0, slash);
  f.is_header = rel_path.ends_with(".h");

  std::ifstream in(fs::path(root) / rel_path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  f.raw_lines = split_lines(buf.str());
  f.code_lines = strip_comments_and_strings(f.raw_lines);

  for (std::size_t i = 0; i < f.raw_lines.size(); ++i) {
    const std::string& raw = f.raw_lines[i];
    int line_no = static_cast<int>(i) + 1;
    parse_suppressions(f, line_no, raw);
    // Includes come from the raw line: the stripper blanks the quoted path.
    std::string_view s = trim(raw);
    if (s.starts_with("#")) {
      s.remove_prefix(1);
      s = trim(s);
      if (s.starts_with("include")) {
        s.remove_prefix(std::string_view("include").size());
        s = trim(s);
        if (s.starts_with("\"")) {
          auto end = s.find('"', 1);
          if (end != std::string_view::npos) {
            f.includes.push_back({std::string(s.substr(1, end - 1)), line_no});
          }
        }
      }
    }
  }
  return f;
}

// ---------------------------------------------------------------------------
// Rule engine
// ---------------------------------------------------------------------------

class Checker {
 public:
  explicit Checker(std::vector<SourceFile> files) : files_(std::move(files)) {
    for (std::size_t i = 0; i < files_.size(); ++i) index_[files_[i].rel_path] = i;
  }

  Report run() {
    for (const SourceFile& f : files_) {
      check_header_guard(f);
      check_using_namespace(f);
      check_identifier_rules(f);
      check_metrics_global(f);
      check_layering(f);
      check_serve_boundary(f);
    }
    check_cycles();
    Report report;
    report.files_scanned = files_.size();
    report.violations = std::move(out_);
    std::sort(report.violations.begin(), report.violations.end(),
              [](const Violation& a, const Violation& b) {
                return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
              });
    return report;
  }

 private:
  void emit(const SourceFile& f, int line, std::string rule, std::string message) {
    if (f.file_allowed.count(rule) != 0) return;
    auto it = f.line_allowed.find(line);
    if (it != f.line_allowed.end() && it->second.count(rule) != 0) return;
    out_.push_back(Violation{f.rel_path, line, std::move(rule), std::move(message)});
  }

  // --- header-guard ---------------------------------------------------------
  void check_header_guard(const SourceFile& f) {
    if (!f.is_header) return;
    std::vector<std::string_view> directives;
    for (const std::string& line : f.code_lines) {
      std::string_view s = trim(line);
      if (s.empty()) continue;
      if (s.starts_with("#pragma once")) return;  // guarded
      if (s.starts_with("#")) {
        directives.push_back(s);
        if (directives.size() >= 2) break;
      } else {
        break;  // real code before any guard
      }
    }
    if (directives.size() >= 2 && directives[0].starts_with("#ifndef") &&
        directives[1].starts_with("#define")) {
      return;  // classic include guard
    }
    emit(f, 1, "header-guard",
         "header has no #pragma once (or #ifndef/#define guard) before code");
  }

  // --- using-namespace-header ----------------------------------------------
  void check_using_namespace(const SourceFile& f) {
    if (!f.is_header) return;
    for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
      const std::string& line = f.code_lines[i];
      auto at = line.find("using");
      while (at != std::string::npos) {
        bool lhs_ok = at == 0 || !is_ident_char(line[at - 1]);
        std::string_view rest = std::string_view(line).substr(at + 5);
        std::string_view kw = trim(rest);
        bool is_namespace_kw = kw.starts_with("namespace") &&
                               (kw.size() == 9 || !is_ident_char(kw[9]));
        if (lhs_ok && !rest.empty() && !is_ident_char(rest.front()) && is_namespace_kw) {
          emit(f, static_cast<int>(i) + 1, "using-namespace-header",
               "`using namespace` in a header pollutes every includer");
          break;
        }
        at = line.find("using", at + 5);
      }
    }
  }

  // --- wallclock / rng / printf --------------------------------------------
  struct BannedIdent {
    const char* ident;
    const char* rule;
    const char* message;
    bool needs_call = false;  ///< only flag when followed by '('
  };

  void check_identifier_rules(const SourceFile& f) {
    static const BannedIdent kBanned[] = {
        {"system_clock", "wallclock",
         "wall-clock access outside common/clock breaks tick reproducibility; take a "
         "Clock& instead",
         false},
        {"gettimeofday", "wallclock",
         "wall-clock access outside common/clock; take a Clock& instead", false},
        {"clock_gettime", "wallclock",
         "wall-clock access outside common/clock; take a Clock& instead", false},
        {"time", "wallclock",
         "time() reads the wall clock; take a Clock& instead (common/clock)", true},
        {"rand", "rng",
         "rand() is ambient global state; use Rng/CounterRng from common/rng", true},
        {"srand", "rng", "srand() is ambient global state; use common/rng seeds", true},
        {"random_device", "rng",
         "std::random_device is nondeterministic; derive seeds via common/rng", false},
        {"mt19937", "rng",
         "raw std::mt19937 seeding bypasses the experiment seed; use Rng/CounterRng",
         false},
        {"mt19937_64", "rng",
         "raw std::mt19937_64 seeding bypasses the experiment seed; use Rng/CounterRng",
         false},
        {"printf", "printf", "library code must log via common/log, not stdout/stderr",
         true},
        {"fprintf", "printf", "library code must log via common/log, not stdout/stderr",
         true},
        {"vfprintf", "printf", "library code must log via common/log, not stdout/stderr",
         true},
        {"puts", "printf", "library code must log via common/log, not stdout/stderr", true},
        {"fputs", "printf", "library code must log via common/log, not stdout/stderr",
         true},
        {"putchar", "printf", "library code must log via common/log, not stdout/stderr",
         true},
    };

    bool clock_exempt = f.rel_path.starts_with("common/clock");
    bool rng_exempt = f.rel_path.starts_with("common/rng");

    for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
      const std::string& line = f.code_lines[i];
      int line_no = static_cast<int>(i) + 1;

      // std::cout / std::cerr are textual, not identifier-shaped.
      for (const char* stream : {"std::cout", "std::cerr"}) {
        if (line.find(stream) != std::string::npos) {
          emit(f, line_no, "printf",
               std::string(stream) + " in library code; log via common/log");
        }
      }

      std::size_t pos = 0;
      while (pos < line.size()) {
        if (!is_ident_char(line[pos])) {
          ++pos;
          continue;
        }
        std::size_t start = pos;
        while (pos < line.size() && is_ident_char(line[pos])) ++pos;
        std::string_view ident = std::string_view(line).substr(start, pos - start);
        for (const BannedIdent& b : kBanned) {
          if (ident != b.ident) continue;
          if ((std::string_view("wallclock") == b.rule && clock_exempt) ||
              (std::string_view("rng") == b.rule && rng_exempt)) {
            continue;
          }
          if (b.needs_call) {
            // Require a call: next non-space char is '(' and the identifier
            // is not a member access (.time(), ->time()).
            std::size_t after = pos;
            while (after < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[after])) != 0) {
              ++after;
            }
            if (after >= line.size() || line[after] != '(') continue;
            std::size_t before = start;
            while (before > 0 &&
                   std::isspace(static_cast<unsigned char>(line[before - 1])) != 0) {
              --before;
            }
            if (before >= 1 && (line[before - 1] == '.' ||
                                (before >= 2 && line[before - 2] == '-' &&
                                 line[before - 1] == '>'))) {
              continue;
            }
          }
          emit(f, line_no, b.rule, b.message);
        }
      }
    }
  }

  // --- metrics-global --------------------------------------------------------
  // Only src/obs may own metric/trace state with static storage duration;
  // every other module takes a MetricsRegistry& (dependency injection), so
  // two simulations in one process can never share instruments. Heuristic:
  // a `static` declaration line naming the registry/sink types, or the
  // reserved global-accessor names, outside obs/.
  void check_metrics_global(const SourceFile& f) {
    if (f.module == "obs") return;
    for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
      const std::string& line = f.code_lines[i];
      int line_no = static_cast<int>(i) + 1;
      bool static_decl = has_identifier(line, "static") &&
                         (has_identifier(line, "MetricsRegistry") ||
                          has_identifier(line, "TraceSink"));
      bool reserved_accessor = has_identifier(line, "global_metrics") ||
                               has_identifier(line, "global_registry") ||
                               has_identifier(line, "global_tracer");
      if (static_decl || reserved_accessor) {
        emit(f, line_no, "metrics-global",
             "global metric state may only live in src/obs; take a "
             "MetricsRegistry& (see DESIGN.md §10)");
      }
    }
  }

  // --- layering --------------------------------------------------------------
  void check_layering(const SourceFile& f) {
    int own = module_layer(f.module);
    if (own < 0) return;  // not a module file; nothing to enforce
    for (const SourceFile::Include& inc : f.includes) {
      auto slash = inc.path.find('/');
      if (slash == std::string::npos) continue;  // same-directory or external
      int target = module_layer(inc.path.substr(0, slash));
      if (target < 0) continue;  // non-module include ("gtest/gtest.h" etc.)
      if (target > own) {
        emit(f, inc.line, "layering",
             "module '" + f.module + "' (layer " + std::to_string(own) +
                 ") must not include '" + inc.path + "' (layer " +
                 std::to_string(target) +
                 "); the DAG is common -> net/topology/netsim -> "
                 "agent/controller/dsa/streaming/analysis -> "
                 "autopilot/core/serve -> chaos");
      }
    }
  }

  // --- serve-boundary --------------------------------------------------------
  // Stricter than layering for the serving tier: serve may only include the
  // allow-listed measurement-substrate modules, and nothing in src/ may
  // include serve (the read path must never feed back into measurement).
  void check_serve_boundary(const SourceFile& f) {
    int own = module_layer(f.module);
    if (own < 0) return;
    for (const SourceFile::Include& inc : f.includes) {
      auto slash = inc.path.find('/');
      if (slash == std::string::npos) continue;
      std::string target = inc.path.substr(0, slash);
      if (module_layer(target) < 0) continue;
      if (f.module == "serve") {
        bool allowed = false;
        for (const char* dep : kServeAllowedDeps) {
          if (target == dep) {
            allowed = true;
            break;
          }
        }
        if (!allowed) {
          emit(f, inc.line, "serve-boundary",
               "serve may only depend on common/net/topology/agent/dsa/"
               "streaming/obs; '" +
                   inc.path + "' is off-limits");
        }
      } else if (target == "serve") {
        emit(f, inc.line, "serve-boundary",
             "module '" + f.module +
                 "' must not include '" + inc.path +
                 "'; only tools and bench may consume the serving tier");
      }
    }
  }

  // --- include-cycle ---------------------------------------------------------
  void check_cycles() {
    colors_.assign(files_.size(), 0);
    for (std::size_t i = 0; i < files_.size(); ++i) {
      if (colors_[i] == 0) dfs(i);
    }
  }

  void dfs(std::size_t node) {
    colors_[node] = 1;
    stack_.push_back(node);
    for (const SourceFile::Include& inc : files_[node].includes) {
      auto it = index_.find(inc.path);
      if (it == index_.end()) continue;
      std::size_t next = it->second;
      if (colors_[next] == 1) {
        // Back edge: the cycle is the stack slice from `next` to `node`.
        std::string chain;
        bool in_cycle = false;
        for (std::size_t n : stack_) {
          if (n == next) in_cycle = true;
          if (in_cycle) chain += files_[n].rel_path + " -> ";
        }
        chain += files_[next].rel_path;
        emit(files_[node], inc.line, "include-cycle", "include cycle: " + chain);
      } else if (colors_[next] == 0) {
        dfs(next);
      }
    }
    stack_.pop_back();
    colors_[node] = 2;
  }

  std::vector<SourceFile> files_;
  std::map<std::string, std::size_t> index_;
  std::vector<Violation> out_;
  std::vector<int> colors_;
  std::vector<std::size_t> stack_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      "layering",     "include-cycle", "wallclock",   "rng",
      "using-namespace-header", "printf", "header-guard", "metrics-global",
      "serve-boundary",
  };
  return kNames;
}

int module_layer(std::string_view module) {
  for (const auto& entry : kLayers) {
    if (module == entry.module) return entry.layer;
  }
  return -1;
}

std::vector<std::string> strip_comments_and_strings(const std::vector<std::string>& raw) {
  enum class St { kCode, kBlockComment, kRawString };
  St st = St::kCode;
  std::string raw_delim;
  std::vector<std::string> out;
  out.reserve(raw.size());

  for (const std::string& line : raw) {
    std::string cooked;
    cooked.reserve(line.size());
    std::size_t i = 0;
    const std::size_t n = line.size();
    while (i < n) {
      char c = line[i];
      switch (st) {
        case St::kBlockComment:
          if (c == '*' && i + 1 < n && line[i + 1] == '/') {
            st = St::kCode;
            cooked += "  ";
            i += 2;
          } else {
            cooked += ' ';
            ++i;
          }
          break;
        case St::kRawString: {
          if (c == ')' && line.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
              i + 1 + raw_delim.size() < n && line[i + 1 + raw_delim.size()] == '"') {
            std::size_t len = 2 + raw_delim.size();
            cooked.append(len, ' ');
            i += len;
            st = St::kCode;
          } else {
            cooked += ' ';
            ++i;
          }
          break;
        }
        case St::kCode:
          if (c == '/' && i + 1 < n && line[i + 1] == '/') {
            cooked.append(n - i, ' ');
            i = n;
          } else if (c == '/' && i + 1 < n && line[i + 1] == '*') {
            st = St::kBlockComment;
            cooked += "  ";
            i += 2;
          } else if (c == 'R' && i + 1 < n && line[i + 1] == '"' &&
                     (i == 0 || !is_ident_char(line[i - 1]))) {
            std::size_t open = line.find('(', i + 2);
            if (open == std::string::npos) {  // malformed; treat as code
              cooked += c;
              ++i;
            } else {
              raw_delim = line.substr(i + 2, open - (i + 2));
              cooked.append(open - i + 1, ' ');
              i = open + 1;
              st = St::kRawString;
            }
          } else if (c == '"') {
            cooked += ' ';
            ++i;
            while (i < n) {
              if (line[i] == '\\' && i + 1 < n) {
                cooked += "  ";
                i += 2;
              } else if (line[i] == '"') {
                cooked += ' ';
                ++i;
                break;
              } else {
                cooked += ' ';
                ++i;
              }
            }
          } else if (c == '\'' && (i == 0 || !is_ident_char(line[i - 1]))) {
            // Leading identifier char means a digit separator (1'000'000)
            // or literal suffix, which stays code.
            cooked += ' ';
            ++i;
            while (i < n) {
              if (line[i] == '\\' && i + 1 < n) {
                cooked += "  ";
                i += 2;
              } else if (line[i] == '\'') {
                cooked += ' ';
                ++i;
                break;
              } else {
                cooked += ' ';
                ++i;
              }
            }
          } else {
            cooked += c;
            ++i;
          }
          break;
      }
    }
    out.push_back(std::move(cooked));
  }
  return out;
}

Report run_files(const std::string& root, const std::vector<std::string>& rel_paths) {
  std::vector<SourceFile> files;
  files.reserve(rel_paths.size());
  for (const std::string& rel : rel_paths) files.push_back(load_file(root, rel));
  return Checker(std::move(files)).run();
}

Report run_tree(const std::string& root) {
  std::vector<std::string> rel_paths;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    rel_paths.push_back(fs::relative(entry.path(), root).generic_string());
  }
  std::sort(rel_paths.begin(), rel_paths.end());
  return run_files(root, rel_paths);
}

}  // namespace pingmesh::lint

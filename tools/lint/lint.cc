#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string_view>

#include "callgraph.h"

namespace pingmesh::lint {

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Layer map: the module DAG from DESIGN.md. A module may include headers
// from modules with layer <= its own; intra-layer cross-includes are legal
// (dsa uses agent's record type) and the include-cycle rule catches any
// true cycle among them.
// ---------------------------------------------------------------------------

constexpr struct {
  const char* module;
  int layer;
} kLayers[] = {
    {"common", 0},    {"net", 1},       {"topology", 1}, {"netsim", 1},
    {"agent", 2},     {"controller", 2}, {"dsa", 2},      {"streaming", 2},
    {"analysis", 2},  {"obs", 2},       {"autopilot", 3}, {"core", 3},
    {"serve", 3},     {"chaos", 4},     {"heal", 4},
};

// The serving tier is a near-leaf: it may read the measurement substrate
// (plus controller, for the SLB VIP its replica front door reuses), but in
// src/ only chaos may build on it (the chaos engine owns the serve-restart
// harness; tools and bench live outside src/ and may too). Enforced by the
// serve-boundary rule on top of the layer numbers above.
constexpr const char* kServeAllowedDeps[] = {
    "common", "net", "topology", "agent", "controller", "dsa", "streaming",
    "obs", "serve",
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `line` contains `name` as a standalone identifier (not a
/// substring of a longer identifier).
bool has_identifier(const std::string& line, std::string_view name) {
  std::size_t at = line.find(name);
  while (at != std::string::npos) {
    bool lhs_ok = at == 0 || !is_ident_char(line[at - 1]);
    std::size_t after = at + name.size();
    bool rhs_ok = after >= line.size() || !is_ident_char(line[after]);
    if (lhs_ok && rhs_ok) return true;
    at = line.find(name, at + 1);
  }
  return false;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

// ---------------------------------------------------------------------------
// Per-file model
// ---------------------------------------------------------------------------

struct SourceFile {
  std::string rel_path;
  std::string module;  ///< first path component ("" when the file sits at root)
  bool is_header = false;
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;  ///< comments/strings blanked
  struct Include {
    std::string path;
    int line;  ///< 1-based
  };
  std::vector<Include> includes;  ///< quoted includes only
  std::set<std::string> file_allowed;              ///< allow-file(...) rules
  std::map<int, std::set<std::string>> line_allowed;  ///< allow(...) per line
  std::set<int> sink_lines;  ///< lines carrying the determinism-sink directive
  struct BadSuppression {
    int line;
    std::string what;  ///< the unknown rule or malformed directive
  };
  std::vector<BadSuppression> bad_suppressions;
  FileModel model;  ///< callgraph facts (functions, guards, annotations)
};

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(std::move(cur));
  return lines;
}

bool is_known_rule(std::string_view name) {
  for (const std::string& r : rule_names()) {
    if (name == r) return true;
  }
  return false;
}

/// Parse the lint directives on one line: allow(...) / allow-file(...) for
/// suppressions, determinism-sink for the taint escape hatch. Unknown rule
/// names and unrecognized directives are recorded as hard errors (the
/// unknown-suppression rule) — a typo would otherwise suppress nothing and
/// rot silently.
void parse_suppressions(SourceFile& f, int line_no, const std::string& raw) {
  // Directives live in // comments ("// lint: ..."), so `lint:` appearing in
  // string literals (error messages, docs) is never parsed as one.
  std::size_t comment = raw.find("//");
  if (comment == std::string::npos) return;
  std::size_t at = raw.find("lint:", comment);
  while (at != std::string::npos) {
    if (at > 0 && is_ident_char(raw[at - 1])) {
      // Tail of a longer word ("pingmesh_lint:"), not a directive.
      at = raw.find("lint:", at + 5);
      continue;
    }
    std::string_view rest = trim(std::string_view(raw).substr(at + 5));
    // First word of the directive: [A-Za-z0-9_-]*.
    std::size_t wend = 0;
    while (wend < rest.size() && (is_ident_char(rest[wend]) || rest[wend] == '-')) {
      ++wend;
    }
    std::string_view word = rest.substr(0, wend);
    if (word.empty()) {
      // `lint:` followed by punctuation is prose, not a directive attempt.
      at = raw.find("lint:", at + 5);
      continue;
    }
    if (word == "determinism-sink") {
      f.sink_lines.insert(line_no);
      at = raw.find("lint:", at + 5);
      continue;
    }
    bool file_scope = word == "allow-file";
    if ((word == "allow" || file_scope) && wend < rest.size() && rest[wend] == '(') {
      std::string_view args = rest.substr(wend + 1);
      auto close = args.find(')');
      if (close == std::string_view::npos) {
        f.bad_suppressions.push_back(
            {line_no, "malformed suppression: missing ')' after '" +
                          std::string(word) + "('"});
        break;
      }
      args = args.substr(0, close);
      std::size_t pos = 0;
      while (pos <= args.size()) {
        auto comma = args.find(',', pos);
        std::string_view one =
            trim(args.substr(pos, comma == std::string_view::npos ? args.size() - pos
                                                                  : comma - pos));
        if (!one.empty()) {
          if (!is_known_rule(one)) {
            f.bad_suppressions.push_back(
                {line_no, "unknown rule '" + std::string(one) + "' in " +
                              std::string(word) + "(...); see --list-rules"});
          } else if (file_scope) {
            f.file_allowed.emplace(one);
          } else {
            f.line_allowed[line_no].emplace(one);
          }
        }
        if (comma == std::string_view::npos) break;
        pos = comma + 1;
      }
    } else {
      f.bad_suppressions.push_back(
          {line_no, "unknown lint directive '" + std::string(word) +
                        "'; expected allow(...), allow-file(...), or "
                        "determinism-sink"});
    }
    at = raw.find("lint:", at + 5);
  }
}

SourceFile load_file(const std::string& root, const std::string& rel_path) {
  SourceFile f;
  f.rel_path = rel_path;
  auto slash = rel_path.find('/');
  f.module = slash == std::string::npos ? std::string() : rel_path.substr(0, slash);
  f.is_header = rel_path.ends_with(".h");

  std::ifstream in(fs::path(root) / rel_path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  f.raw_lines = split_lines(buf.str());
  f.code_lines = strip_comments_and_strings(f.raw_lines);

  for (std::size_t i = 0; i < f.raw_lines.size(); ++i) {
    const std::string& raw = f.raw_lines[i];
    int line_no = static_cast<int>(i) + 1;
    parse_suppressions(f, line_no, raw);
    // Includes come from the raw line: the stripper blanks the quoted path.
    std::string_view s = trim(raw);
    if (s.starts_with("#")) {
      s.remove_prefix(1);
      s = trim(s);
      if (s.starts_with("include")) {
        s.remove_prefix(std::string_view("include").size());
        s = trim(s);
        if (s.starts_with("\"")) {
          auto end = s.find('"', 1);
          if (end != std::string_view::npos) {
            f.includes.push_back({std::string(s.substr(1, end - 1)), line_no});
          }
        }
      }
    }
  }
  f.model = parse_file_model(f.rel_path, f.code_lines, f.sink_lines);
  return f;
}

// ---------------------------------------------------------------------------
// Rule engine
// ---------------------------------------------------------------------------

class Checker {
 public:
  Checker(std::vector<SourceFile> files, Options options)
      : files_(std::move(files)), options_(std::move(options)) {
    for (std::size_t i = 0; i < files_.size(); ++i) index_[files_[i].rel_path] = i;
  }

  Report run() {
    for (const SourceFile& f : files_) {
      check_header_guard(f);
      check_using_namespace(f);
      check_identifier_rules(f);
      check_metrics_global(f);
      check_layering(f);
      check_serve_boundary(f);
      check_suppressions(f);
    }
    if (options_.enabled("include-cycle")) check_cycles();
    if (options_.enabled("determinism-taint") || options_.enabled("lock-discipline") ||
        options_.enabled("lock-order")) {
      build_analysis();
      if (options_.enabled("determinism-taint")) pass_taint();
      if (options_.enabled("lock-discipline")) pass_lock_discipline();
      if (options_.enabled("lock-order")) pass_lock_order();
    }
    Report report;
    report.files_scanned = files_.size();
    report.violations = std::move(out_);
    std::sort(report.violations.begin(), report.violations.end(),
              [](const Violation& a, const Violation& b) {
                return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
              });
    return report;
  }

 private:
  void emit(const SourceFile& f, int line, std::string rule, std::string message) {
    if (!options_.enabled(rule)) return;
    if (f.file_allowed.count(rule) != 0) return;
    auto it = f.line_allowed.find(line);
    if (it != f.line_allowed.end() && it->second.count(rule) != 0) return;
    out_.push_back(Violation{f.rel_path, line, std::move(rule), std::move(message)});
  }

  // --- unknown-suppression ----------------------------------------------------
  void check_suppressions(const SourceFile& f) {
    for (const SourceFile::BadSuppression& b : f.bad_suppressions) {
      emit(f, b.line, "unknown-suppression", b.what);
    }
  }

  // --- header-guard ---------------------------------------------------------
  void check_header_guard(const SourceFile& f) {
    if (!f.is_header) return;
    std::vector<std::string_view> directives;
    for (const std::string& line : f.code_lines) {
      std::string_view s = trim(line);
      if (s.empty()) continue;
      if (s.starts_with("#pragma once")) return;  // guarded
      if (s.starts_with("#")) {
        directives.push_back(s);
        if (directives.size() >= 2) break;
      } else {
        break;  // real code before any guard
      }
    }
    if (directives.size() >= 2 && directives[0].starts_with("#ifndef") &&
        directives[1].starts_with("#define")) {
      return;  // classic include guard
    }
    emit(f, 1, "header-guard",
         "header has no #pragma once (or #ifndef/#define guard) before code");
  }

  // --- using-namespace-header ----------------------------------------------
  void check_using_namespace(const SourceFile& f) {
    if (!f.is_header) return;
    for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
      const std::string& line = f.code_lines[i];
      auto at = line.find("using");
      while (at != std::string::npos) {
        bool lhs_ok = at == 0 || !is_ident_char(line[at - 1]);
        std::string_view rest = std::string_view(line).substr(at + 5);
        std::string_view kw = trim(rest);
        bool is_namespace_kw = kw.starts_with("namespace") &&
                               (kw.size() == 9 || !is_ident_char(kw[9]));
        if (lhs_ok && !rest.empty() && !is_ident_char(rest.front()) && is_namespace_kw) {
          emit(f, static_cast<int>(i) + 1, "using-namespace-header",
               "`using namespace` in a header pollutes every includer");
          break;
        }
        at = line.find("using", at + 5);
      }
    }
  }

  // --- wallclock / rng / printf --------------------------------------------
  struct BannedIdent {
    const char* ident;
    const char* rule;
    const char* message;
    bool needs_call = false;  ///< only flag when followed by '('
  };

  void check_identifier_rules(const SourceFile& f) {
    static const BannedIdent kBanned[] = {
        {"system_clock", "wallclock",
         "wall-clock access outside common/clock breaks tick reproducibility; take a "
         "Clock& instead",
         false},
        {"gettimeofday", "wallclock",
         "wall-clock access outside common/clock; take a Clock& instead", false},
        {"clock_gettime", "wallclock",
         "wall-clock access outside common/clock; take a Clock& instead", false},
        {"time", "wallclock",
         "time() reads the wall clock; take a Clock& instead (common/clock)", true},
        {"rand", "rng",
         "rand() is ambient global state; use Rng/CounterRng from common/rng", true},
        {"srand", "rng", "srand() is ambient global state; use common/rng seeds", true},
        {"random_device", "rng",
         "std::random_device is nondeterministic; derive seeds via common/rng", false},
        {"mt19937", "rng",
         "raw std::mt19937 seeding bypasses the experiment seed; use Rng/CounterRng",
         false},
        {"mt19937_64", "rng",
         "raw std::mt19937_64 seeding bypasses the experiment seed; use Rng/CounterRng",
         false},
        {"printf", "printf", "library code must log via common/log, not stdout/stderr",
         true},
        {"fprintf", "printf", "library code must log via common/log, not stdout/stderr",
         true},
        {"vfprintf", "printf", "library code must log via common/log, not stdout/stderr",
         true},
        {"puts", "printf", "library code must log via common/log, not stdout/stderr", true},
        {"fputs", "printf", "library code must log via common/log, not stdout/stderr",
         true},
        {"putchar", "printf", "library code must log via common/log, not stdout/stderr",
         true},
    };

    bool clock_exempt = f.rel_path.starts_with("common/clock");
    bool rng_exempt = f.rel_path.starts_with("common/rng");

    for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
      const std::string& line = f.code_lines[i];
      int line_no = static_cast<int>(i) + 1;

      // std::cout / std::cerr are textual, not identifier-shaped.
      for (const char* stream : {"std::cout", "std::cerr"}) {
        if (line.find(stream) != std::string::npos) {
          emit(f, line_no, "printf",
               std::string(stream) + " in library code; log via common/log");
        }
      }

      std::size_t pos = 0;
      while (pos < line.size()) {
        if (!is_ident_char(line[pos])) {
          ++pos;
          continue;
        }
        std::size_t start = pos;
        while (pos < line.size() && is_ident_char(line[pos])) ++pos;
        std::string_view ident = std::string_view(line).substr(start, pos - start);
        for (const BannedIdent& b : kBanned) {
          if (ident != b.ident) continue;
          if ((std::string_view("wallclock") == b.rule && clock_exempt) ||
              (std::string_view("rng") == b.rule && rng_exempt)) {
            continue;
          }
          if (b.needs_call) {
            // Require a call: next non-space char is '(' and the identifier
            // is not a member access (.time(), ->time()).
            std::size_t after = pos;
            while (after < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[after])) != 0) {
              ++after;
            }
            if (after >= line.size() || line[after] != '(') continue;
            std::size_t before = start;
            while (before > 0 &&
                   std::isspace(static_cast<unsigned char>(line[before - 1])) != 0) {
              --before;
            }
            if (before >= 1 && (line[before - 1] == '.' ||
                                (before >= 2 && line[before - 2] == '-' &&
                                 line[before - 1] == '>'))) {
              continue;
            }
          }
          emit(f, line_no, b.rule, b.message);
        }
      }
    }
  }

  // --- metrics-global --------------------------------------------------------
  // Only src/obs may own metric/trace state with static storage duration;
  // every other module takes a MetricsRegistry& (dependency injection), so
  // two simulations in one process can never share instruments. Heuristic:
  // a `static` declaration line naming the registry/sink types, or the
  // reserved global-accessor names, outside obs/.
  void check_metrics_global(const SourceFile& f) {
    if (f.module == "obs") return;
    for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
      const std::string& line = f.code_lines[i];
      int line_no = static_cast<int>(i) + 1;
      bool static_decl = has_identifier(line, "static") &&
                         (has_identifier(line, "MetricsRegistry") ||
                          has_identifier(line, "TraceSink"));
      bool reserved_accessor = has_identifier(line, "global_metrics") ||
                               has_identifier(line, "global_registry") ||
                               has_identifier(line, "global_tracer");
      if (static_decl || reserved_accessor) {
        emit(f, line_no, "metrics-global",
             "global metric state may only live in src/obs; take a "
             "MetricsRegistry& (see DESIGN.md §10)");
      }
    }
  }

  // --- layering --------------------------------------------------------------
  void check_layering(const SourceFile& f) {
    int own = module_layer(f.module);
    if (own < 0) return;  // not a module file; nothing to enforce
    for (const SourceFile::Include& inc : f.includes) {
      auto slash = inc.path.find('/');
      if (slash == std::string::npos) continue;  // same-directory or external
      int target = module_layer(inc.path.substr(0, slash));
      if (target < 0) continue;  // non-module include ("gtest/gtest.h" etc.)
      if (target > own) {
        emit(f, inc.line, "layering",
             "module '" + f.module + "' (layer " + std::to_string(own) +
                 ") must not include '" + inc.path + "' (layer " +
                 std::to_string(target) +
                 "); the DAG is common -> net/topology/netsim -> "
                 "agent/controller/dsa/streaming/analysis -> "
                 "autopilot/core/serve -> chaos");
      }
    }
  }

  // --- serve-boundary --------------------------------------------------------
  // Stricter than layering for the serving tier: serve may only include the
  // allow-listed measurement-substrate modules, and nothing in src/ may
  // include serve (the read path must never feed back into measurement).
  void check_serve_boundary(const SourceFile& f) {
    int own = module_layer(f.module);
    if (own < 0) return;
    for (const SourceFile::Include& inc : f.includes) {
      auto slash = inc.path.find('/');
      if (slash == std::string::npos) continue;
      std::string target = inc.path.substr(0, slash);
      if (module_layer(target) < 0) continue;
      if (f.module == "serve") {
        bool allowed = false;
        for (const char* dep : kServeAllowedDeps) {
          if (target == dep) {
            allowed = true;
            break;
          }
        }
        if (!allowed) {
          emit(f, inc.line, "serve-boundary",
               "serve may only depend on common/net/topology/agent/controller/"
               "dsa/streaming/obs; '" +
                   inc.path + "' is off-limits");
        }
      } else if (target == "serve" && f.module != "chaos") {
        emit(f, inc.line, "serve-boundary",
             "module '" + f.module +
                 "' must not include '" + inc.path +
                 "'; only chaos, tools, and bench may consume the serving tier");
      }
    }
  }

  // --- include-cycle ---------------------------------------------------------
  void check_cycles() {
    colors_.assign(files_.size(), 0);
    for (std::size_t i = 0; i < files_.size(); ++i) {
      if (colors_[i] == 0) dfs(i);
    }
  }

  void dfs(std::size_t node) {
    colors_[node] = 1;
    stack_.push_back(node);
    for (const SourceFile::Include& inc : files_[node].includes) {
      auto it = index_.find(inc.path);
      if (it == index_.end()) continue;
      std::size_t next = it->second;
      if (colors_[next] == 1) {
        // Back edge: the cycle is the stack slice from `next` to `node`.
        std::string chain;
        bool in_cycle = false;
        for (std::size_t n : stack_) {
          if (n == next) in_cycle = true;
          if (in_cycle) chain += files_[n].rel_path + " -> ";
        }
        chain += files_[next].rel_path;
        emit(files_[node], inc.line, "include-cycle", "include cycle: " + chain);
      } else if (colors_[next] == 0) {
        dfs(next);
      }
    }
    stack_.pop_back();
    colors_[node] = 2;
  }

  // --- interprocedural analysis ---------------------------------------------
  // Flattened symbol tables + include-closure visibility shared by the taint
  // and lock passes. Everything iterates in deterministic (file, definition)
  // order so the report is byte-stable.

  struct FnRef {
    std::size_t file;  ///< index into files_
    std::size_t fn;    ///< index into files_[file].model.functions
  };

  const FunctionInfo& fn_at(std::size_t i) const {
    const FnRef& r = all_fns_[i];
    return files_[r.file].model.functions[r.fn];
  }

  void build_analysis() {
    for (std::size_t fi = 0; fi < files_.size(); ++fi) {
      const FileModel& m = files_[fi].model;
      for (std::size_t j = 0; j < m.functions.size(); ++j) all_fns_.push_back({fi, j});
    }
    for (std::size_t i = 0; i < all_fns_.size(); ++i) {
      const FunctionInfo& f = fn_at(i);
      if (!f.cls.empty()) {
        class_names_.insert(f.cls);
        by_cls_name_[{f.cls, f.name}].push_back(i);
        member_by_name_[f.name].push_back(i);
      } else {
        free_by_name_[f.name].push_back(i);
      }
    }

    // Reflexive include closure per file, over quoted includes that resolve
    // into the scanned set; a .cc is additionally visible through its
    // same-stem header, so calls to out-of-line definitions resolve for
    // every includer of the header.
    closure_.assign(files_.size(), {});
    hdr_of_.assign(files_.size(), -1);
    for (std::size_t fi = 0; fi < files_.size(); ++fi) {
      const std::string& p = files_[fi].rel_path;
      if (p.ends_with(".cc")) {
        auto it = index_.find(p.substr(0, p.size() - 3) + ".h");
        if (it != index_.end()) hdr_of_[fi] = static_cast<int>(it->second);
      }
      std::vector<std::size_t> work{fi};
      closure_[fi].insert(fi);
      while (!work.empty()) {
        std::size_t cur = work.back();
        work.pop_back();
        for (const SourceFile::Include& inc : files_[cur].includes) {
          auto it = index_.find(inc.path);
          if (it == index_.end()) continue;
          if (closure_[fi].insert(it->second).second) work.push_back(it->second);
        }
      }
    }

    // Merge PM_REQUIRES/PM_ACQUIRE seen on bodyless declarations into the
    // out-of-line definitions they belong to.
    std::map<std::pair<std::string, std::string>,
             std::pair<std::set<std::string>, std::set<std::string>>>
        decls;
    for (const SourceFile& sf : files_) {
      for (const auto& [key, locks] : sf.model.decl_locks) {
        auto& slot = decls[key];
        slot.first.insert(locks.first.begin(), locks.first.end());
        slot.second.insert(locks.second.begin(), locks.second.end());
      }
    }
    req_.resize(all_fns_.size());
    acq_.resize(all_fns_.size());
    for (std::size_t i = 0; i < all_fns_.size(); ++i) {
      const FunctionInfo& f = fn_at(i);
      req_[i] = f.requires_locks;
      acq_[i] = f.acquires_locks;
      auto it = decls.find({f.cls, f.name});
      if (it != decls.end()) {
        req_[i].insert(it->second.first.begin(), it->second.first.end());
        acq_[i].insert(it->second.second.begin(), it->second.second.end());
      }
    }

    calls_resolved_.resize(all_fns_.size());
    for (std::size_t i = 0; i < all_fns_.size(); ++i) {
      const FunctionInfo& f = fn_at(i);
      calls_resolved_[i].reserve(f.calls.size());
      for (const CallSite& c : f.calls) calls_resolved_[i].push_back(resolve(i, c));
    }
  }

  bool visible_from(std::size_t def_file, std::size_t tu) const {
    if (closure_[tu].count(def_file) != 0) return true;
    int h = hdr_of_[def_file];
    return h >= 0 && closure_[tu].count(static_cast<std::size_t>(h)) != 0;
  }

  /// Candidate definitions for one call site, filtered by include-closure
  /// visibility. Over-approximates (overload sets, same-named members on
  /// different classes) — the passes only ever derive reachability from it.
  std::vector<std::size_t> resolve(std::size_t caller, const CallSite& c) const {
    const FunctionInfo& f = fn_at(caller);
    std::size_t tu = all_fns_[caller].file;
    std::vector<std::size_t> out;
    auto add = [&](const std::vector<std::size_t>* cands) {
      if (cands == nullptr) return;
      for (std::size_t v : *cands) {
        if (visible_from(all_fns_[v].file, tu)) out.push_back(v);
      }
    };
    auto find_in = [](const auto& table, const auto& key) {
      auto it = table.find(key);
      return it == table.end() ? nullptr : &it->second;
    };
    if (!c.qualifier.empty()) {
      if (class_names_.count(c.qualifier) != 0) {
        add(find_in(by_cls_name_, std::make_pair(c.qualifier, c.name)));
      } else {
        add(find_in(free_by_name_, c.name));  // namespace-qualified free call
      }
    } else if (c.member) {
      add(find_in(member_by_name_, c.name));
    } else {
      add(find_in(free_by_name_, c.name));
      if (!f.cls.empty()) add(find_in(by_cls_name_, std::make_pair(f.cls, c.name)));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  // --- determinism-taint ------------------------------------------------------
  // A function that directly touches a wallclock/rng primitive must not be
  // reachable from shard-parallel code (parallel_for call sites and the pool
  // worker loop) unless it lives in common/clock / common/rng or carries the
  // determinism-sink directive. BFS from the parallel roots; the pred chain
  // reconstructs a concrete call path for the report.

  static bool taint_exempt(const FunctionInfo& f) {
    return f.file.starts_with("common/clock") || f.file.starts_with("common/rng");
  }

  void pass_taint() {
    constexpr int kUnvisited = -2;
    constexpr int kRoot = -1;
    std::vector<int> pred(all_fns_.size(), kUnvisited);
    std::vector<std::size_t> queue;
    for (std::size_t i = 0; i < all_fns_.size(); ++i) {
      const FunctionInfo& f = fn_at(i);
      if (taint_exempt(f)) continue;
      bool root = f.cls == "ThreadPool" &&
                  (f.name == "worker_loop" || f.name == "parallel_for" ||
                   f.name == "parallel_for_shards");
      for (const CallSite& c : f.calls) {
        if (c.name == "parallel_for" || c.name == "parallel_for_shards") root = true;
      }
      if (root) {
        pred[i] = kRoot;
        queue.push_back(i);
      }
    }
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      std::size_t u = queue[qi];
      if (fn_at(u).sink) continue;  // taint neither flags a sink nor crosses it
      for (const std::vector<std::size_t>& cands : calls_resolved_[u]) {
        for (std::size_t v : cands) {
          if (pred[v] != kUnvisited || taint_exempt(fn_at(v))) continue;
          pred[v] = static_cast<int>(u);
          queue.push_back(v);
        }
      }
    }
    for (std::size_t i = 0; i < all_fns_.size(); ++i) {
      if (pred[i] == kUnvisited) continue;
      const FunctionInfo& f = fn_at(i);
      if (f.sink || f.taint_prims.empty()) continue;
      std::string chain = f.qualified();
      for (int p = pred[i]; p != kRoot; p = pred[static_cast<std::size_t>(p)]) {
        chain = fn_at(static_cast<std::size_t>(p)).qualified() + " -> " + chain;
      }
      const auto& [prim, prim_line] = f.taint_prims.front();
      emit(files_[all_fns_[i].file], f.def_line, "determinism-taint",
           "'" + f.qualified() + "' uses nondeterministic primitive '" + prim +
               "' (line " + std::to_string(prim_line) +
               ") and is reachable from shard-parallel code: " + chain +
               "; move it into common/clock or common/rng, break the call path, "
               "or mark an intentional consumer with the determinism-sink "
               "directive");
    }
  }

  // --- lock-discipline --------------------------------------------------------
  // PM_GUARDED_BY fields only touched holding the named mutex (or inside a
  // PM_REQUIRES function); PM_REQUIRES callees only called with the lock
  // held; no re-acquiring a mutex already held. Constructors/destructors are
  // exempt, as are receiver-qualified uses (another object's field is that
  // object's lock).

  void pass_lock_discipline() {
    std::map<std::pair<std::string, std::string>, const GuardedField*> class_fields;
    std::map<std::pair<std::string, std::string>, const GuardedField*> file_fields;
    for (const SourceFile& sf : files_) {
      for (const GuardedField& g : sf.model.guarded_fields) {
        if (!g.cls.empty()) {
          class_fields.emplace(std::make_pair(g.cls, g.field), &g);
        } else {
          file_fields.emplace(std::make_pair(g.file, g.field), &g);
        }
      }
    }
    for (std::size_t i = 0; i < all_fns_.size(); ++i) {
      const FunctionInfo& f = fn_at(i);
      if (f.is_ctor_dtor) continue;
      const SourceFile& sf = files_[all_fns_[i].file];
      const std::set<std::string>& req = req_[i];

      std::set<std::pair<int, std::string>> seen;
      for (const IdentUse& u : f.uses) {
        if (u.receiver_qualified) continue;
        const GuardedField* g = nullptr;
        if (!f.cls.empty()) {
          auto it = class_fields.find({f.cls, u.name});
          if (it != class_fields.end()) g = it->second;
        }
        if (g == nullptr) {
          auto it = file_fields.find({sf.rel_path, u.name});
          if (it != file_fields.end()) g = it->second;
        }
        if (g == nullptr) continue;
        if (std::find(u.held.begin(), u.held.end(), g->mutex) != u.held.end()) continue;
        if (req.count(g->mutex) != 0) continue;
        if (!seen.insert({u.line, u.name}).second) continue;
        emit(sf, u.line, "lock-discipline",
             "'" + u.name + "' is PM_GUARDED_BY(" + g->mutex +
                 ") but accessed without holding it; take the lock or annotate "
                 "the accessor PM_REQUIRES(" + g->mutex + ")");
      }

      // PM_REQUIRES callees. Restricted to own-class members and same-file
      // free functions: for a foreign object the named mutex is the callee
      // object's, which the caller cannot meaningfully hold by name.
      std::set<std::pair<int, std::string>> seen_calls;
      for (std::size_t ci = 0; ci < f.calls.size(); ++ci) {
        const CallSite& c = f.calls[ci];
        if (c.member) continue;
        for (std::size_t v : calls_resolved_[i][ci]) {
          const FunctionInfo& d = fn_at(v);
          if (!d.cls.empty() && d.cls != f.cls) continue;
          if (d.cls.empty() && d.file != f.file) continue;
          for (const std::string& m : req_[v]) {
            if (std::find(c.held.begin(), c.held.end(), m) != c.held.end()) continue;
            if (req.count(m) != 0) continue;
            if (!seen_calls.insert({c.line, d.qualified() + "/" + m}).second) continue;
            emit(sf, c.line, "lock-discipline",
                 "call to '" + d.qualified() + "' which PM_REQUIRES(" + m +
                     "), but '" + m + "' is not held here");
          }
        }
      }

      for (const LockAcquire& a : f.acquires) {
        if (a.key.empty()) continue;
        if (std::find(a.held_keys_before.begin(), a.held_keys_before.end(), a.key) !=
            a.held_keys_before.end()) {
          emit(sf, a.line, "lock-discipline",
               "mutex '" + a.name +
                   "' is already held here; re-acquiring a non-recursive mutex "
                   "self-deadlocks");
        }
      }
    }
  }

  // --- lock-order -------------------------------------------------------------
  // Global acquisition-order graph over qualified mutex keys: an edge A -> B
  // means B was acquired (directly, or transitively through a call) while A
  // was held. Any cycle is a potential deadlock. Keys, edges, and the DFS all
  // iterate in sorted order, so the report is byte-stable.

  std::string lock_key_for(const FunctionInfo& f, const std::string& base) const {
    return f.cls.empty() ? f.file + "::" + base : f.cls + "::" + base;
  }

  void pass_lock_order() {
    // Transitive acquire-key set per function, to a fixed point (recursion in
    // the call graph just stops adding keys).
    std::vector<std::set<std::string>> trans(all_fns_.size());
    for (std::size_t i = 0; i < all_fns_.size(); ++i) {
      const FunctionInfo& f = fn_at(i);
      for (const LockAcquire& a : f.acquires) {
        if (!a.key.empty()) trans[i].insert(a.key);
      }
      for (const std::string& m : acq_[i]) trans[i].insert(lock_key_for(f, m));
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < all_fns_.size(); ++i) {
        for (const std::vector<std::size_t>& cands : calls_resolved_[i]) {
          for (std::size_t v : cands) {
            for (const std::string& k : trans[v]) {
              if (trans[i].insert(k).second) changed = true;
            }
          }
        }
      }
    }

    struct Loc {
      std::size_t file;
      int line;
    };
    std::map<std::pair<std::string, std::string>, Loc> edges;
    auto add_edge = [&edges](const std::string& from, const std::string& to,
                             std::size_t file, int line) {
      if (from != to) edges.emplace(std::make_pair(from, to), Loc{file, line});
    };
    for (std::size_t i = 0; i < all_fns_.size(); ++i) {
      const FunctionInfo& f = fn_at(i);
      std::size_t fi = all_fns_[i].file;
      for (const LockAcquire& a : f.acquires) {
        if (a.key.empty()) continue;
        for (const std::string& k : a.held_keys_before) add_edge(k, a.key, fi, a.line);
      }
      for (std::size_t ci = 0; ci < f.calls.size(); ++ci) {
        const CallSite& c = f.calls[ci];
        if (c.held_keys.empty()) continue;
        for (std::size_t v : calls_resolved_[i][ci]) {
          for (const std::string& k2 : trans[v]) {
            for (const std::string& k1 : c.held_keys) add_edge(k1, k2, fi, c.line);
          }
        }
      }
    }

    std::map<std::string, std::vector<std::pair<std::string, Loc>>> adj;
    std::map<std::string, int> color;
    for (const auto& [e, loc] : edges) {
      adj[e.first].push_back({e.second, loc});
      color.emplace(e.first, 0);
      color.emplace(e.second, 0);
    }
    std::vector<std::string> path;
    std::set<std::vector<std::string>> reported;
    auto dfs_lock = [&](auto&& self, const std::string& u) -> void {
      color[u] = 1;
      path.push_back(u);
      auto it = adj.find(u);
      if (it != adj.end()) {
        for (const auto& [v, loc] : it->second) {
          if (color[v] == 0) {
            self(self, v);
          } else if (color[v] == 1) {
            auto start = std::find(path.begin(), path.end(), v);
            std::vector<std::string> cycle(start, path.end());
            std::rotate(cycle.begin(), std::min_element(cycle.begin(), cycle.end()),
                        cycle.end());
            if (reported.insert(cycle).second) {
              std::string chain;
              for (const std::string& node : cycle) chain += node + " -> ";
              chain += cycle.front();
              emit(files_[loc.file], loc.line, "lock-order",
                   "potential deadlock: lock acquisition-order cycle " + chain +
                       "; this acquisition closes the cycle");
            }
          }
        }
      }
      path.pop_back();
      color[u] = 2;
    };
    for (const auto& [node, c0] : color) {
      (void)c0;
      if (color[node] == 0) dfs_lock(dfs_lock, node);
    }
  }

  std::vector<SourceFile> files_;
  Options options_;
  std::map<std::string, std::size_t> index_;
  std::vector<Violation> out_;
  std::vector<int> colors_;
  std::vector<std::size_t> stack_;
  // interprocedural state (build_analysis)
  std::vector<FnRef> all_fns_;
  std::set<std::string> class_names_;
  std::map<std::pair<std::string, std::string>, std::vector<std::size_t>> by_cls_name_;
  std::map<std::string, std::vector<std::size_t>> free_by_name_;
  std::map<std::string, std::vector<std::size_t>> member_by_name_;
  std::vector<std::set<std::size_t>> closure_;
  std::vector<int> hdr_of_;
  std::vector<std::set<std::string>> req_;
  std::vector<std::set<std::string>> acq_;
  std::vector<std::vector<std::vector<std::size_t>>> calls_resolved_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      "layering",     "include-cycle", "wallclock",   "rng",
      "using-namespace-header", "printf", "header-guard", "metrics-global",
      "serve-boundary", "determinism-taint", "lock-discipline", "lock-order",
      "unknown-suppression",
  };
  return kNames;
}

std::string violations_to_json(const std::vector<Violation>& violations) {
  auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);  // lint: allow(printf)
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  };
  std::string out = "[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    if (i != 0) out += ',';
    out += "\n  {\"file\":\"" + escape(v.file) + "\",\"line\":" +
           std::to_string(v.line) + ",\"rule\":\"" + escape(v.rule) +
           "\",\"message\":\"" + escape(v.message) + "\"}";
  }
  out += violations.empty() ? "]\n" : "\n]\n";
  return out;
}

int module_layer(std::string_view module) {
  for (const auto& entry : kLayers) {
    if (module == entry.module) return entry.layer;
  }
  return -1;
}

std::vector<std::string> strip_comments_and_strings(const std::vector<std::string>& raw) {
  enum class St { kCode, kBlockComment, kRawString };
  St st = St::kCode;
  std::string raw_delim;
  std::vector<std::string> out;
  out.reserve(raw.size());

  for (const std::string& line : raw) {
    std::string cooked;
    cooked.reserve(line.size());
    std::size_t i = 0;
    const std::size_t n = line.size();
    while (i < n) {
      char c = line[i];
      switch (st) {
        case St::kBlockComment:
          if (c == '*' && i + 1 < n && line[i + 1] == '/') {
            st = St::kCode;
            cooked += "  ";
            i += 2;
          } else {
            cooked += ' ';
            ++i;
          }
          break;
        case St::kRawString: {
          if (c == ')' && line.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
              i + 1 + raw_delim.size() < n && line[i + 1 + raw_delim.size()] == '"') {
            std::size_t len = 2 + raw_delim.size();
            cooked.append(len, ' ');
            i += len;
            st = St::kCode;
          } else {
            cooked += ' ';
            ++i;
          }
          break;
        }
        case St::kCode:
          if (c == '/' && i + 1 < n && line[i + 1] == '/') {
            cooked.append(n - i, ' ');
            i = n;
          } else if (c == '/' && i + 1 < n && line[i + 1] == '*') {
            st = St::kBlockComment;
            cooked += "  ";
            i += 2;
          } else if (c == '"') {
            // Raw-string opener? The chars just before the quote must form
            // exactly R or an encoding-prefixed R (u8R/uR/UR/LR) that is not
            // the tail of a longer identifier, and the delimiter up to '('
            // must be valid (<= 16 chars, no space/paren/backslash/quote).
            // Anything else is an ordinary string literal.
            std::size_t ps = i;
            while (ps > 0 && is_ident_char(line[ps - 1])) --ps;
            std::string_view prefix = std::string_view(line).substr(ps, i - ps);
            bool raw_open = false;
            if (prefix == "R" || prefix == "u8R" || prefix == "uR" ||
                prefix == "UR" || prefix == "LR") {
              std::size_t open = line.find('(', i + 1);
              if (open != std::string::npos && open - (i + 1) <= 16) {
                bool delim_ok = true;
                for (std::size_t d = i + 1; d < open; ++d) {
                  char dc = line[d];
                  if (dc == ' ' || dc == ')' || dc == '\\' || dc == '"') {
                    delim_ok = false;
                  }
                }
                if (delim_ok) {
                  raw_delim = line.substr(i + 1, open - (i + 1));
                  cooked.append(open - i + 1, ' ');
                  i = open + 1;
                  st = St::kRawString;
                  raw_open = true;
                }
              }
            }
            if (raw_open) break;
            cooked += ' ';
            ++i;
            while (i < n) {
              if (line[i] == '\\' && i + 1 < n) {
                cooked += "  ";
                i += 2;
              } else if (line[i] == '"') {
                cooked += ' ';
                ++i;
                break;
              } else {
                cooked += ' ';
                ++i;
              }
            }
          } else if (c == '\'' && (i == 0 || !is_ident_char(line[i - 1]))) {
            // Leading identifier char means a digit separator (1'000'000)
            // or literal suffix, which stays code.
            cooked += ' ';
            ++i;
            while (i < n) {
              if (line[i] == '\\' && i + 1 < n) {
                cooked += "  ";
                i += 2;
              } else if (line[i] == '\'') {
                cooked += ' ';
                ++i;
                break;
              } else {
                cooked += ' ';
                ++i;
              }
            }
          } else {
            cooked += c;
            ++i;
          }
          break;
      }
    }
    out.push_back(std::move(cooked));
  }
  return out;
}

Report run_files(const std::string& root, const std::vector<std::string>& rel_paths,
                 const Options& options) {
  std::vector<SourceFile> files;
  files.reserve(rel_paths.size());
  for (const std::string& rel : rel_paths) files.push_back(load_file(root, rel));
  return Checker(std::move(files), options).run();
}

Report run_tree(const std::string& root, const Options& options) {
  std::vector<std::string> rel_paths;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    rel_paths.push_back(fs::relative(entry.path(), root).generic_string());
  }
  std::sort(rel_paths.begin(), rel_paths.end());
  return run_files(root, rel_paths, options);
}

}  // namespace pingmesh::lint

// CLI entry point for the lint library. Exit status is the contract: 0 on
// a clean tree, 1 when any rule fires, 2 on usage errors — so it slots
// directly into ctest and CI.
//
// Usage:
//   pingmesh_lint <src-root> [more-roots...]
//   pingmesh_lint --list-rules
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& name : pingmesh::lint::rule_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: pingmesh_lint [--list-rules] <src-root> [more-roots...]\n");
      return 0;
    }
    roots.push_back(std::move(arg));
  }
  if (roots.empty()) {
    std::fprintf(stderr, "pingmesh_lint: no source root given (try: pingmesh_lint src)\n");
    return 2;
  }

  std::size_t files = 0;
  std::size_t violations = 0;
  for (const std::string& root : roots) {
    if (!std::filesystem::is_directory(root)) {
      std::fprintf(stderr, "pingmesh_lint: not a directory: %s\n", root.c_str());
      return 2;
    }
    pingmesh::lint::Report report = pingmesh::lint::run_tree(root);
    files += report.files_scanned;
    violations += report.violations.size();
    for (const pingmesh::lint::Violation& v : report.violations) {
      std::fprintf(stderr, "%s/%s:%d: [%s] %s\n", root.c_str(), v.file.c_str(), v.line,
                   v.rule.c_str(), v.message.c_str());
    }
  }
  std::printf("pingmesh_lint: %zu files, %zu violation%s\n", files, violations,
              violations == 1 ? "" : "s");
  return violations == 0 ? 0 : 1;
}

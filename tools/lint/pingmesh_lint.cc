// CLI entry point for the lint library. Exit status is the contract: 0 on
// a clean tree, 1 when any rule fires, 2 on usage errors — so it slots
// directly into ctest and CI.
//
// Usage:
//   pingmesh_lint [--json] [--github] [--preset=full|support]
//                 [--rules=a,b,c] <src-root> [more-roots...]
//   pingmesh_lint --list-rules
//
// Output modes (combinable; exit status is the same in all of them):
//   default   one `root/file:line: [rule] message` per violation on stderr,
//             a summary line on stdout
//   --json    a JSON array of {file, line, rule, message} on stdout (the
//             summary moves to stderr so stdout stays machine-parseable)
//   --github  GitHub Actions workflow commands (::error file=...,line=...)
//             on stdout, so violations surface as PR annotations
//
// Rule selection:
//   --preset=full      every rule (the default)
//   --preset=support   the library-agnostic subset for tools/ and bench/,
//                      where printf and ambient clocks are legitimate:
//                      header-guard, using-namespace-header, include-cycle,
//                      unknown-suppression
//   --rules=a,b,c      an explicit comma-separated rule list
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "lint.h"

namespace {

/// Escape a GitHub Actions workflow-command value (data portion).
std::string gh_escape(const std::string& s, bool property) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case '\r': out += "%0D"; break;
      case '\n': out += "%0A"; break;
      case ':':
        if (property) {
          out += "%3A";
        } else {
          out += c;
        }
        break;
      case ',':
        if (property) {
          out += "%2C";
        } else {
          out += c;
        }
        break;
      default: out += c;
    }
  }
  return out;
}

const std::set<std::string>& support_preset() {
  static const std::set<std::string> kSupport = {
      "header-guard", "using-namespace-header", "include-cycle",
      "unknown-suppression",
  };
  return kSupport;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  pingmesh::lint::Options options;
  bool json = false;
  bool github = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& name : pingmesh::lint::rule_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: pingmesh_lint [--list-rules] [--json] [--github]\n"
          "                     [--preset=full|support] [--rules=a,b,c]\n"
          "                     <src-root> [more-roots...]\n");
      return 0;
    }
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg == "--github") {
      github = true;
      continue;
    }
    if (arg.starts_with("--preset=")) {
      std::string preset = arg.substr(9);
      if (preset == "full") {
        options.rules.clear();
      } else if (preset == "support") {
        options.rules = support_preset();
      } else {
        std::fprintf(stderr, "pingmesh_lint: unknown preset '%s' (full|support)\n",
                     preset.c_str());
        return 2;
      }
      continue;
    }
    if (arg.starts_with("--rules=")) {
      std::string list = arg.substr(8);
      std::size_t pos = 0;
      while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        std::string one =
            list.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!one.empty()) {
          bool known = false;
          for (const std::string& name : pingmesh::lint::rule_names()) {
            if (one == name) known = true;
          }
          if (!known) {
            std::fprintf(stderr, "pingmesh_lint: unknown rule '%s' (see --list-rules)\n",
                         one.c_str());
            return 2;
          }
          options.rules.insert(one);
        }
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      continue;
    }
    if (arg.starts_with("--")) {
      std::fprintf(stderr, "pingmesh_lint: unknown option '%s' (try --help)\n",
                   arg.c_str());
      return 2;
    }
    roots.push_back(std::move(arg));
  }
  if (roots.empty()) {
    std::fprintf(stderr, "pingmesh_lint: no source root given (try: pingmesh_lint src)\n");
    return 2;
  }

  std::size_t files = 0;
  std::vector<pingmesh::lint::Violation> all;
  for (const std::string& root : roots) {
    if (!std::filesystem::is_directory(root)) {
      std::fprintf(stderr, "pingmesh_lint: not a directory: %s\n", root.c_str());
      return 2;
    }
    pingmesh::lint::Report report = pingmesh::lint::run_tree(root, options);
    files += report.files_scanned;
    for (pingmesh::lint::Violation& v : report.violations) {
      v.file = root + "/" + v.file;
      all.push_back(std::move(v));
    }
  }

  for (const pingmesh::lint::Violation& v : all) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                 v.message.c_str());
  }
  if (github) {
    for (const pingmesh::lint::Violation& v : all) {
      std::printf("::error file=%s,line=%d,title=%s::%s\n",
                  gh_escape(v.file, true).c_str(), v.line,
                  gh_escape("lint/" + v.rule, true).c_str(),
                  gh_escape(v.message, false).c_str());
    }
  }
  if (json) {
    std::fputs(pingmesh::lint::violations_to_json(all).c_str(), stdout);
    std::fprintf(stderr, "pingmesh_lint: %zu files, %zu violation%s\n", files, all.size(),
                 all.size() == 1 ? "" : "s");
  } else {
    std::printf("pingmesh_lint: %zu files, %zu violation%s\n", files, all.size(),
                all.size() == 1 ? "" : "s");
  }
  return all.empty() ? 0 : 1;
}

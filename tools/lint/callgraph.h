// Best-effort per-TU symbol table and call-graph facts for pingmesh_lint's
// interprocedural passes (determinism-taint, lock-discipline, lock-order).
//
// Built on the same lexer as the line rules: parse_file_model() walks the
// comment/string-stripped lines of one file with a scope stack
// (namespace / class / function / block), recording
//  - function definitions (class-qualified where the syntax says so),
//  - call sites with the receiver shape ("f(", "x.f(", "Cls::f("),
//  - RAII lock-guard acquisitions and the set of mutexes held at each
//    call/identifier site (std::lock_guard / unique_lock / scoped_lock /
//    shared_lock; `defer_lock` guards do not count as held),
//  - PM_GUARDED_BY / PM_REQUIRES / PM_ACQUIRE annotations
//    (src/common/annotations.h), on fields and on function decls/defs,
//  - uses of the wallclock/rng primitive identifiers that seed the
//    determinism taint.
//
// This is a heuristic parser, not a compiler: templates, overload sets, and
// function pointers resolve conservatively (a call site may match several
// definitions; an unresolvable call matches none). The passes in lint.cc are
// written so that over-approximation surfaces extra reachability, never
// bogus "unknown symbol" errors.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace pingmesh::lint {

/// One call site inside a function body.
struct CallSite {
  std::string name;       ///< base identifier ("parallel_for", "place")
  std::string qualifier;  ///< "Cls" for Cls::name(...) calls, else ""
  bool member = false;    ///< receiver-qualified: x.name(...) / x->name(...)
  std::string receiver;   ///< the receiver identifier; "" when complex
  int line = 0;           ///< 1-based
  std::vector<std::string> held;       ///< base mutex names held here
  std::vector<std::string> held_keys;  ///< qualified keys ("Cls::m_") held here
};

/// One use of an identifier that may name a guarded field.
struct IdentUse {
  std::string name;
  int line = 0;
  bool receiver_qualified = false;  ///< x.name / x->name with x != this
  std::vector<std::string> held;    ///< base mutex names held here
};

/// One RAII guard acquisition (lock-order graph edge source).
struct LockAcquire {
  std::string name;  ///< base mutex identifier
  std::string key;   ///< qualified key; "" when the mutex is another object's
  int line = 0;
  std::vector<std::string> held_keys_before;  ///< qualified keys already held
  std::vector<std::string> held_before;       ///< base names already held
};

struct FunctionInfo {
  std::string file;  ///< rel_path of the defining file
  std::string cls;   ///< enclosing class name; "" for free functions
  std::string name;
  int def_line = 0;  ///< line of the opening '{'
  int body_end = 0;  ///< line of the closing '}'
  bool is_ctor_dtor = false;
  bool sink = false;  ///< carries the determinism-sink lint directive
  std::set<std::string> requires_locks;  ///< PM_REQUIRES arguments
  std::set<std::string> acquires_locks;  ///< PM_ACQUIRE arguments
  std::vector<CallSite> calls;
  std::vector<LockAcquire> acquires;
  std::vector<IdentUse> uses;
  /// Determinism primitives used directly: (primitive, line).
  std::vector<std::pair<std::string, int>> taint_prims;

  [[nodiscard]] std::string qualified() const {
    return cls.empty() ? name : cls + "::" + name;
  }
};

struct GuardedField {
  std::string file;
  std::string cls;  ///< "" for file-scope variables
  std::string field;
  std::string mutex;  ///< PM_GUARDED_BY argument (base identifier)
  int line = 0;
};

/// Everything the interprocedural passes need from one file.
struct FileModel {
  std::vector<FunctionInfo> functions;
  std::vector<GuardedField> guarded_fields;
  /// Lock annotations seen on declarations without bodies, to merge into
  /// the definition found elsewhere: (cls, name) -> (requires, acquires).
  std::map<std::pair<std::string, std::string>,
           std::pair<std::set<std::string>, std::set<std::string>>>
      decl_locks;
};

/// Identifiers that seed determinism taint (superset of the wallclock/rng
/// line rules: also the monotonic clocks, which are deterministic-looking
/// but still timing-dependent). `needs_call` mirrors the line rules.
struct TaintPrimitive {
  const char* ident;
  bool needs_call;
};
const std::vector<TaintPrimitive>& taint_primitives();

/// Parse one file's model. `code_lines` are the stripped lines
/// (strip_comments_and_strings); `sink_lines` are the 1-based lines carrying
/// the determinism-sink directive (parsed from raw lines by the caller).
FileModel parse_file_model(const std::string& rel_path,
                           const std::vector<std::string>& code_lines,
                           const std::set<int>& sink_lines);

}  // namespace pingmesh::lint

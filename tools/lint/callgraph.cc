#include "callgraph.h"

#include <algorithm>
#include <cctype>

namespace pingmesh::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if", "for", "while", "switch", "do", "else", "try", "catch", "return",
      "sizeof", "alignof", "new", "delete", "throw", "case", "default", "goto",
      "break", "continue", "static_cast", "dynamic_cast", "reinterpret_cast",
      "const_cast", "static_assert", "noexcept", "decltype", "typeid", "this",
      "operator", "co_await", "co_return", "co_yield", "namespace", "class",
      "struct", "enum", "union", "using", "typedef", "template", "typename",
      "public", "private", "protected", "virtual", "override", "final",
      "static", "inline", "constexpr", "consteval", "constinit", "explicit",
      "friend", "mutable", "extern", "register", "thread_local", "volatile",
      "const", "auto", "void", "bool", "char", "int", "short", "long", "float",
      "double", "unsigned", "signed", "wchar_t", "char8_t", "char16_t",
      "char32_t", "true", "false", "nullptr", "nodiscard", "maybe_unused",
      "fallthrough", "likely", "unlikely", "requires", "concept",
      "PM_GUARDED_BY", "PM_REQUIRES", "PM_ACQUIRE",
  };
  return kKeywords.count(s) != 0;
}

bool is_guard_class(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" ||
         s == "shared_lock";
}

struct Token {
  std::string text;
  int line = 0;  ///< 1-based
  bool ident = false;
};

/// Tokenize the stripped lines: identifiers, and punctuation with `::` and
/// `->` merged. Preprocessor lines (and their backslash continuations) are
/// skipped entirely — macro definitions are not part of the scope structure.
std::vector<Token> tokenize(const std::vector<std::string>& code_lines) {
  std::vector<Token> out;
  bool continuation = false;
  for (std::size_t li = 0; li < code_lines.size(); ++li) {
    const std::string& line = code_lines[li];
    int line_no = static_cast<int>(li) + 1;
    const std::size_t n = line.size();
    std::size_t first = line.find_first_not_of(" \t");
    if (continuation) {
      continuation = !line.empty() && line.back() == '\\';
      continue;
    }
    if (first != std::string::npos && line[first] == '#') {
      continuation = !line.empty() && line.back() == '\\';
      continue;
    }
    std::size_t i = 0;
    while (i < n) {
      char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (is_ident_char(c)) {
        std::size_t start = i;
        while (i < n && is_ident_char(line[i])) ++i;
        out.push_back({line.substr(start, i - start), line_no, true});
        continue;
      }
      if (c == ':' && i + 1 < n && line[i + 1] == ':') {
        out.push_back({"::", line_no, false});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < n && line[i + 1] == '>') {
        out.push_back({"->", line_no, false});
        i += 2;
        continue;
      }
      out.push_back({std::string(1, c), line_no, false});
      ++i;
    }
  }
  return out;
}

enum class ScopeKind { kNamespace, kClass, kFunction, kBlock };

struct Scope {
  ScopeKind kind;
  std::string name;        ///< class name for kClass
  int fn_index = -1;       ///< out.functions index for kFunction
  std::size_t guard_mark;  ///< guards_ size at push (restored at pop)
  std::vector<Token> saved_stmt;  ///< stmt at push; restored for kBlock pops
};

struct ActiveGuard {
  std::string base;  ///< mutex base identifier
  std::string key;   ///< qualified key; "" when unresolvable
};

class Parser {
 public:
  Parser(std::string rel_path, const std::vector<std::string>& code_lines,
         const std::set<int>& sink_lines)
      : rel_path_(std::move(rel_path)),
        sink_lines_(sink_lines),
        tokens_(tokenize(code_lines)) {}

  FileModel run() {
    const std::size_t n = tokens_.size();
    for (pos_ = 0; pos_ < n; ++pos_) {
      const Token& t = tokens_[pos_];
      if (t.text == "{") {
        open_brace();
        continue;
      }
      if (t.text == "}") {
        close_brace();
        continue;
      }
      if (t.text == ";") {
        end_statement();
        continue;
      }
      if (in_function() && t.ident && is_guard_class(t.text) &&
          try_consume_guard_decl()) {
        continue;
      }
      if (in_function() && t.ident) scan_function_ident();
      stmt_.push_back(t);
    }
    return std::move(out_);
  }

 private:
  // --- scope helpers ---------------------------------------------------------

  bool in_function() const { return current_fn_ >= 0; }

  FunctionInfo& fn() { return out_.functions[static_cast<std::size_t>(current_fn_)]; }

  std::string enclosing_class() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == ScopeKind::kClass) return it->name;
    }
    return {};
  }

  /// Qualified lock-order key for a mutex named in the current context.
  std::string mutex_key(const std::string& base, const std::string& cls) const {
    return cls.empty() ? rel_path_ + "::" + base : cls + "::" + base;
  }

  std::vector<std::string> held_bases() const {
    std::vector<std::string> v;
    for (const ActiveGuard& g : guards_) v.push_back(g.base);
    return v;
  }

  std::vector<std::string> held_keys() const {
    std::vector<std::string> v;
    for (const ActiveGuard& g : guards_) {
      if (!g.key.empty()) v.push_back(g.key);
    }
    return v;
  }

  bool any_sink_line_in(int from, int to) const {
    auto it = sink_lines_.lower_bound(from);
    return it != sink_lines_.end() && *it <= to;
  }

  // --- statement classification at '{' --------------------------------------

  void open_brace() {
    Scope s;
    s.guard_mark = guards_.size();
    s.saved_stmt = stmt_;

    int paren_depth = 0;
    bool top_level_assign = false;
    for (const Token& t : stmt_) {
      if (t.text == "(") ++paren_depth;
      else if (t.text == ")") --paren_depth;
      else if (t.text == "=" && paren_depth == 0) top_level_assign = true;
    }

    if (stmt_.empty() || paren_depth > 0 || top_level_assign) {
      s.kind = ScopeKind::kBlock;  // bare block, inline lambda, initializer
    } else if (stmt_.front().text == "namespace" ||
               (stmt_.size() >= 2 && stmt_[0].text == "inline" &&
                stmt_[1].text == "namespace")) {
      s.kind = ScopeKind::kNamespace;
    } else if (is_control_stmt()) {
      s.kind = ScopeKind::kBlock;
    } else if (classify_class(s)) {
      // s.kind/name filled in
    } else if (classify_function(s)) {
      // s.kind/fn_index filled in
    } else {
      s.kind = ScopeKind::kBlock;
    }

    if (s.kind == ScopeKind::kFunction) {
      current_fn_ = s.fn_index;
      // PM_REQUIRES mutexes count as held throughout the body.
      const FunctionInfo& f = out_.functions[static_cast<std::size_t>(s.fn_index)];
      for (const std::string& m : f.requires_locks) {
        guards_.push_back({m, mutex_key(m, f.cls)});
      }
    }
    scopes_.push_back(std::move(s));
    stmt_.clear();
  }

  bool is_control_stmt() const {
    static const std::set<std::string> kControl = {
        "if", "for", "while", "switch", "do", "else", "try", "catch", "return",
    };
    return !stmt_.empty() && kControl.count(stmt_.front().text) != 0;
  }

  /// `class NAME ... {` / `struct NAME ... {` where NAME is directly after
  /// the keyword and the keyword is not preceded by `enum`.
  bool classify_class(Scope& s) {
    for (std::size_t i = 0; i < stmt_.size(); ++i) {
      const std::string& t = stmt_[i].text;
      if (t != "class" && t != "struct" && t != "union") continue;
      if (i > 0 && stmt_[i - 1].text == "enum") return false;
      if (i + 1 < stmt_.size() && stmt_[i + 1].ident &&
          !is_keyword(stmt_[i + 1].text)) {
        s.kind = ScopeKind::kClass;
        s.name = stmt_[i + 1].text;
        return true;
      }
      return false;  // anonymous struct/union: treat as block
    }
    if (!stmt_.empty() && stmt_.front().text == "enum") {
      s.kind = ScopeKind::kBlock;
      return true;
    }
    return false;
  }

  /// Function definition: an identifier immediately before the first
  /// depth-0 '(' of the statement.
  bool classify_function(Scope& s) {
    int depth = 0;
    std::size_t open = stmt_.size();
    for (std::size_t i = 0; i < stmt_.size(); ++i) {
      const std::string& t = stmt_[i].text;
      if (t == "(") {
        if (depth == 0) {
          open = i;
          break;
        }
        ++depth;
      } else if (t == ")") {
        --depth;
      }
    }
    if (open == stmt_.size() || open == 0) {
      // No parameter list. `operator()` and friends land here too; give
      // them an opaque name so their bodies are still scanned.
      return classify_operator(s);
    }
    const Token& name_tok = stmt_[open - 1];
    if (!name_tok.ident || is_keyword(name_tok.text)) return classify_operator(s);

    FunctionInfo f;
    f.file = rel_path_;
    f.name = name_tok.text;
    std::size_t qpos = open - 1;
    if (qpos >= 1 && stmt_[qpos - 1].text == "~") {
      f.name = "~" + f.name;
      --qpos;
    }
    if (qpos >= 2 && stmt_[qpos - 1].text == "::" && stmt_[qpos - 2].ident) {
      f.cls = stmt_[qpos - 2].text;  // out-of-class definition
    } else {
      f.cls = enclosing_class();  // in-class definition (or free function)
    }
    f.is_ctor_dtor =
        !f.cls.empty() && (f.name == f.cls || f.name == "~" + f.cls);
    f.def_line = tokens_[pos_].line;
    collect_lock_annotations(stmt_, &f.requires_locks, &f.acquires_locks);
    f.sink = any_sink_line_in(stmt_.front().line, f.def_line);

    s.kind = ScopeKind::kFunction;
    s.fn_index = static_cast<int>(out_.functions.size());
    out_.functions.push_back(std::move(f));
    return true;
  }

  bool classify_operator(Scope& s) {
    for (const Token& t : stmt_) {
      if (t.text == "operator") {
        FunctionInfo f;
        f.file = rel_path_;
        f.cls = enclosing_class();
        f.name = "(operator)";
        f.def_line = tokens_[pos_].line;
        s.kind = ScopeKind::kFunction;
        s.fn_index = static_cast<int>(out_.functions.size());
        out_.functions.push_back(std::move(f));
        return true;
      }
    }
    return false;
  }

  void close_brace() {
    if (scopes_.empty()) {
      stmt_.clear();
      return;
    }
    Scope s = std::move(scopes_.back());
    scopes_.pop_back();
    guards_.resize(s.guard_mark);
    if (s.kind == ScopeKind::kFunction) {
      FunctionInfo& f = out_.functions[static_cast<std::size_t>(s.fn_index)];
      f.body_end = tokens_[pos_].line;
      if (!f.sink) f.sink = any_sink_line_in(f.def_line, f.body_end);
      current_fn_ = -1;
      for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
        if (it->kind == ScopeKind::kFunction) {
          current_fn_ = it->fn_index;
          break;
        }
      }
      stmt_.clear();
    } else if (s.kind == ScopeKind::kBlock) {
      // Restore the statement in flight (brace-init of a class member, the
      // head of an if/for chain) so the decl parse at ';' still sees it.
      stmt_ = std::move(s.saved_stmt);
    } else {
      stmt_.clear();
    }
  }

  // --- declarations ending in ';' --------------------------------------------

  void end_statement() {
    if (!in_function() && !stmt_.empty()) {
      ScopeKind ctx =
          scopes_.empty() ? ScopeKind::kNamespace : scopes_.back().kind;
      if (ctx == ScopeKind::kClass || ctx == ScopeKind::kNamespace) {
        parse_guarded_field(ctx);
        parse_method_decl_annotations();
      }
    }
    stmt_.clear();
  }

  /// `TYPE name PM_GUARDED_BY(mu_);` — also `name[N] PM_GUARDED_BY(mu_)`.
  void parse_guarded_field(ScopeKind ctx) {
    for (std::size_t i = 0; i < stmt_.size(); ++i) {
      if (stmt_[i].text != "PM_GUARDED_BY") continue;
      if (i + 2 >= stmt_.size() || stmt_[i + 1].text != "(") continue;
      if (!stmt_[i + 2].ident) continue;
      std::size_t fpos = i;  // walk back over an array extent to the name
      if (fpos >= 1 && stmt_[fpos - 1].text == "]") {
        while (fpos >= 1 && stmt_[fpos - 1].text != "[") --fpos;
        if (fpos >= 1) --fpos;  // now at '['
      }
      if (fpos < 1 || !stmt_[fpos - 1].ident) continue;
      GuardedField g;
      g.file = rel_path_;
      g.cls = ctx == ScopeKind::kClass ? scopes_.back().name : std::string();
      g.field = stmt_[fpos - 1].text;
      g.mutex = stmt_[i + 2].text;
      g.line = stmt_[i].line;
      out_.guarded_fields.push_back(std::move(g));
    }
  }

  /// `RET name(...) const PM_REQUIRES(mu_);` on a declaration without body:
  /// remember the annotation for the out-of-line definition.
  void parse_method_decl_annotations() {
    std::set<std::string> req, acq;
    collect_lock_annotations(stmt_, &req, &acq);
    if (req.empty() && acq.empty()) return;
    int depth = 0;
    for (std::size_t i = 0; i < stmt_.size(); ++i) {
      const std::string& t = stmt_[i].text;
      if (t == "(") {
        if (depth == 0 && i >= 1 && stmt_[i - 1].ident &&
            !is_keyword(stmt_[i - 1].text)) {
          std::string cls = scopes_.empty() || scopes_.back().kind != ScopeKind::kClass
                                ? std::string()
                                : scopes_.back().name;
          auto& slot = out_.decl_locks[{cls, stmt_[i - 1].text}];
          slot.first.insert(req.begin(), req.end());
          slot.second.insert(acq.begin(), acq.end());
          return;
        }
        ++depth;
      } else if (t == ")") {
        --depth;
      }
    }
  }

  static void collect_lock_annotations(const std::vector<Token>& stmt,
                                       std::set<std::string>* req,
                                       std::set<std::string>* acq) {
    for (std::size_t i = 0; i + 2 < stmt.size(); ++i) {
      const std::string& t = stmt[i].text;
      if (t != "PM_REQUIRES" && t != "PM_ACQUIRE") continue;
      if (stmt[i + 1].text != "(" || !stmt[i + 2].ident) continue;
      (t == "PM_REQUIRES" ? req : acq)->insert(stmt[i + 2].text);
    }
  }

  // --- guard declarations ----------------------------------------------------

  /// At tokens_[pos_] == lock_guard/unique_lock/scoped_lock/shared_lock.
  /// Consume `GuardClass<...> var(args...)` (or {args...}) and register the
  /// acquired mutexes. Returns false (consuming nothing) when the shape
  /// doesn't match — e.g. the name used as a type in a parameter list.
  bool try_consume_guard_decl() {
    std::size_t p = pos_ + 1;
    const std::size_t n = tokens_.size();
    if (p < n && tokens_[p].text == "<") {  // template argument list
      int depth = 1;
      ++p;
      while (p < n && depth > 0) {
        if (tokens_[p].text == "<") ++depth;
        else if (tokens_[p].text == ">") --depth;
        ++p;
      }
    }
    if (p >= n || !tokens_[p].ident || is_keyword(tokens_[p].text)) return false;
    ++p;  // past the variable name
    if (p >= n || (tokens_[p].text != "(" && tokens_[p].text != "{")) return false;
    const std::string close = tokens_[p].text == "(" ? ")" : "}";
    const std::string open = tokens_[p].text;
    int line = tokens_[p].line;
    ++p;

    // Split top-level comma-separated arguments.
    std::vector<std::vector<Token>> args(1);
    int depth = 1;
    while (p < n && depth > 0) {
      const std::string& t = tokens_[p].text;
      if (t == open) ++depth;
      else if (t == close) --depth;
      if (depth == 0) break;
      if (t == "," && depth == 1) args.emplace_back();
      else args.back().push_back(tokens_[p]);
      ++p;
    }
    if (p >= n) return false;  // unterminated; bail out, treat as plain code

    bool deferred = false;
    for (const auto& arg : args) {
      for (const Token& t : arg) {
        if (t.text == "defer_lock" || t.text == "defer_lock_t" ||
            t.text == "adopt_lock" || t.text == "try_to_lock") {
          deferred = true;
        }
      }
    }

    const std::string cls = enclosing_class();
    for (const auto& arg : args) {
      if (arg.empty()) continue;
      // The mutex is the last identifier of the argument; it is another
      // object's when an identifier other than `this` precedes a . or ->.
      std::string base;
      bool foreign = false;
      for (std::size_t i = 0; i < arg.size(); ++i) {
        if (arg[i].ident && !is_keyword(arg[i].text)) base = arg[i].text;
        if ((arg[i].text == "." || arg[i].text == "->") && i >= 1 &&
            arg[i - 1].ident && arg[i - 1].text != "this") {
          foreign = true;
        }
      }
      if (base.empty() || deferred) continue;
      ActiveGuard g;
      g.base = base;
      g.key = foreign ? std::string() : mutex_key(base, cls);
      if (in_function()) {
        LockAcquire acq;
        acq.name = base;
        acq.key = g.key;
        acq.line = line;
        acq.held_keys_before = held_keys();
        acq.held_before = held_bases();
        fn().acquires.push_back(std::move(acq));
      }
      guards_.push_back(std::move(g));
    }
    pos_ = p;  // at the closing token; loop ++ moves past it
    return true;
  }

  // --- in-function identifier scan -------------------------------------------

  void scan_function_ident() {
    const Token& t = tokens_[pos_];
    if (is_keyword(t.text)) return;
    const Token* next = pos_ + 1 < tokens_.size() ? &tokens_[pos_ + 1] : nullptr;
    const Token* prev = pos_ >= 1 ? &tokens_[pos_ - 1] : nullptr;
    const Token* prev2 = pos_ >= 2 ? &tokens_[pos_ - 2] : nullptr;

    if (prev != nullptr && prev->text == "::") {
      // Qualified tail: Cls::name or ns::name. A call site when followed by
      // '('; enum values / statics are skipped as uses.
      if (next != nullptr && next->text == "(" && prev2 != nullptr && prev2->ident) {
        CallSite c;
        c.name = t.text;
        c.qualifier = prev2->text;
        c.line = t.line;
        c.held = held_bases();
        c.held_keys = held_keys();
        fn().calls.push_back(std::move(c));
      }
      check_taint_prim(t, next, prev);
      return;
    }

    bool member = prev != nullptr && (prev->text == "." || prev->text == "->");
    std::string receiver;
    if (member && prev2 != nullptr && prev2->ident) receiver = prev2->text;
    bool self = member && receiver == "this";

    IdentUse u;
    u.name = t.text;
    u.line = t.line;
    u.receiver_qualified = member && !self;
    u.held = held_bases();
    fn().uses.push_back(std::move(u));

    if (next != nullptr && next->text == "(" && !is_guard_class(t.text)) {
      CallSite c;
      c.name = t.text;
      c.member = member && !self;
      c.receiver = self ? std::string() : receiver;
      c.line = t.line;
      c.held = held_bases();
      c.held_keys = held_keys();
      fn().calls.push_back(std::move(c));
    }
    check_taint_prim(t, next, prev);
  }

  void check_taint_prim(const Token& t, const Token* next, const Token* prev) {
    for (const TaintPrimitive& p : taint_primitives()) {
      if (t.text != p.ident) continue;
      if (p.needs_call) {
        if (next == nullptr || next->text != "(") return;
        if (prev != nullptr && (prev->text == "." || prev->text == "->")) return;
      }
      fn().taint_prims.emplace_back(t.text, t.line);
      return;
    }
  }

  std::string rel_path_;
  const std::set<int>& sink_lines_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::vector<Token> stmt_;
  std::vector<Scope> scopes_;
  std::vector<ActiveGuard> guards_;
  int current_fn_ = -1;
  FileModel out_;
};

}  // namespace

const std::vector<TaintPrimitive>& taint_primitives() {
  static const std::vector<TaintPrimitive> kPrims = {
      {"system_clock", false},   {"steady_clock", false},
      {"high_resolution_clock", false},
      {"gettimeofday", false},   {"clock_gettime", false},
      {"time", true},            {"rand", true},
      {"srand", true},           {"random_device", false},
      {"mt19937", false},        {"mt19937_64", false},
  };
  return kPrims;
}

FileModel parse_file_model(const std::string& rel_path,
                           const std::vector<std::string>& code_lines,
                           const std::set<int>& sink_lines) {
  return Parser(rel_path, code_lines, sink_lines).run();
}

}  // namespace pingmesh::lint

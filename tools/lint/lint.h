// pingmesh_lint: a domain-invariant checker for the pingmesh source tree.
//
// Not a general C++ linter. It enforces the handful of repo-wide contracts
// that the compiler cannot: the module layering DAG, the determinism
// discipline that keeps parallel ticks bit-reproducible (no wall-clock or
// ambient randomness outside common/clock and common/rng), and a few
// hygiene rules. It works from its own lexer — a comment/string stripper
// plus identifier scan — and the quoted-include graph; no libTooling, no
// compiler dependency, so it runs as a tier-1 ctest in every build.
//
// Rule catalog (DESIGN.md §9.1):
//   layering                module may only include same-or-lower layers
//   include-cycle           quoted-include graph must stay acyclic
//   wallclock               wall-clock calls only inside common/clock
//   rng                     ambient randomness only inside common/rng
//   using-namespace-header  no `using namespace` at header scope
//   printf                  no stdout/stderr printf-family in library code
//   header-guard            every header opens with #pragma once (or an
//                           #ifndef/#define guard)
//   metrics-global          global metric/trace state (static MetricsRegistry
//                           / TraceSink, or global_* accessors) only in
//                           src/obs; everyone else takes a MetricsRegistry&
//   serve-boundary          serve may only include common/net/topology/agent/
//                           dsa/streaming/obs; no src/ module may include
//                           serve (only tools and bench consume it)
//
// Suppression syntax (checked against raw source, so it works in comments):
//   // lint: allow(rule[, rule...])        — this line only
//   // lint: allow-file(rule[, rule...])   — whole file
#pragma once

#include <string>
#include <vector>

namespace pingmesh::lint {

struct Violation {
  std::string file;  ///< path relative to the scanned root
  int line = 0;      ///< 1-based; 0 for whole-file findings
  std::string rule;
  std::string message;
};

struct Report {
  std::vector<Violation> violations;
  std::size_t files_scanned = 0;
};

/// All rule names, for --list-rules and suppression validation.
const std::vector<std::string>& rule_names();

/// Layer of a module directory name (0 = common ... 3 = autopilot/core),
/// or -1 when the name is not a known module.
int module_layer(std::string_view module);

/// Blank comments and string/char literals, preserving line and column
/// structure so later scans report true positions. Handles // and block
/// comments, escapes, digit separators (1'000'000), and R"(...)" raw
/// strings, including multi-line spans. Exposed for unit tests.
std::vector<std::string> strip_comments_and_strings(const std::vector<std::string>& raw);

/// Lint the given files (paths relative to `root`, which is an src-like
/// tree whose first-level directories are modules).
Report run_files(const std::string& root, const std::vector<std::string>& rel_paths);

/// Lint every .h/.cc under `root`, in deterministic (sorted) order.
Report run_tree(const std::string& root);

}  // namespace pingmesh::lint

// pingmesh_lint: a domain-invariant checker for the pingmesh source tree.
//
// Not a general C++ linter. It enforces the handful of repo-wide contracts
// that the compiler cannot: the module layering DAG, the determinism
// discipline that keeps parallel ticks bit-reproducible (no wall-clock or
// ambient randomness outside common/clock and common/rng), lock discipline
// over the PM_GUARDED_BY/PM_REQUIRES/PM_ACQUIRE annotations
// (src/common/annotations.h), and a few hygiene rules. It works from its
// own lexer — a comment/string stripper plus identifier scan — a best-effort
// per-TU call graph (callgraph.h), and the quoted-include graph; no
// libTooling, no compiler dependency, so it runs as a tier-1 ctest in every
// build.
//
// Rule catalog (DESIGN.md §9.1):
//   layering                module may only include same-or-lower layers
//   include-cycle           quoted-include graph must stay acyclic
//   wallclock               wall-clock calls only inside common/clock
//   rng                     ambient randomness only inside common/rng
//   using-namespace-header  no `using namespace` at header scope
//   printf                  no stdout/stderr printf-family in library code
//   header-guard            every header opens with #pragma once (or an
//                           #ifndef/#define guard)
//   metrics-global          global metric/trace state (static MetricsRegistry
//                           / TraceSink, or global_* accessors) only in
//                           src/obs; everyone else takes a MetricsRegistry&
//   serve-boundary          serve may only include common/net/topology/agent/
//                           controller/dsa/streaming/obs; in src/ only chaos
//                           may include serve (tools and bench also consume it)
//   determinism-taint       no function using a wallclock/rng primitive
//                           (directly; transitive reach is what's computed)
//                           may be reachable from shard-parallel code —
//                           parallel_for bodies and the pool worker loop —
//                           outside common/clock and common/rng; escape with
//                           the determinism-sink directive (below)
//   lock-discipline         PM_GUARDED_BY fields only accessed holding the
//                           named mutex (or inside PM_REQUIRES functions);
//                           PM_REQUIRES callees only called with the lock
//                           held; no re-acquiring a mutex already held
//   lock-order              the global mutex acquisition-order graph (direct
//                           nesting + call-mediated acquisitions) must stay
//                           acyclic; a cycle is a potential deadlock
//   unknown-suppression     suppression directives must name real rules — a
//                           typo would otherwise silently suppress nothing
//
// Suppression syntax (checked against raw source, so it works in comments;
// rule names must come from the catalog above or the unknown-suppression
// rule fires):
//   one line:    lint: allow(printf)          after `//`, this line only
//   whole file:  lint: allow-file(printf)     after `//`, anywhere in file
//   several:     lint: allow(wallclock, rng)
// The determinism-taint escape hatch is a directive of its own: a line
// reading `lint: determinism-sink` after `//` on (or inside) a function
// definition marks that function as an intentional nondeterminism consumer —
// taint neither flags it nor propagates past it.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace pingmesh::lint {

struct Violation {
  std::string file;  ///< path relative to the scanned root
  int line = 0;      ///< 1-based; 0 for whole-file findings
  std::string rule;
  std::string message;
};

struct Report {
  std::vector<Violation> violations;
  std::size_t files_scanned = 0;
};

/// Rule selection. An empty set means every rule; otherwise only the named
/// rules run (the CLI's --rules / --preset map onto this).
struct Options {
  std::set<std::string> rules;
  [[nodiscard]] bool enabled(const std::string& rule) const {
    return rules.empty() || rules.count(rule) != 0;
  }
};

/// All rule names, for --list-rules and suppression validation.
const std::vector<std::string>& rule_names();

/// Layer of a module directory name (0 = common ... 4 = chaos),
/// or -1 when the name is not a known module.
int module_layer(std::string_view module);

/// Blank comments and string/char literals, preserving line and column
/// structure so later scans report true positions. Handles // and block
/// comments, escapes, digit separators (1'000'000), and raw strings — bare
/// R"(...)", custom-delimiter R"tag(...)tag", and the encoding-prefixed
/// forms u8R/uR/UR/LR — including multi-line spans. Exposed for unit tests.
std::vector<std::string> strip_comments_and_strings(const std::vector<std::string>& raw);

/// Violations as a JSON array of {file, line, rule, message} objects, with
/// proper string escaping — the CLI's --json payload.
std::string violations_to_json(const std::vector<Violation>& violations);

/// Lint the given files (paths relative to `root`, which is an src-like
/// tree whose first-level directories are modules).
Report run_files(const std::string& root, const std::vector<std::string>& rel_paths,
                 const Options& options = {});

/// Lint every .h/.cc under `root`, in deterministic (sorted) order.
Report run_tree(const std::string& root, const Options& options = {});

}  // namespace pingmesh::lint

#!/usr/bin/env bash
# Build the address-sanitizer configuration (PINGMESH_SANITIZE=address:
# ASan + UBSan) and run the test suite under it. The streaming path is the
# motivating coverage — its ring-buffer reuse and allocation-free ingest
# contract are exactly the kind of code ASan catches regressions in — but
# by default the whole suite runs, since the sanitized build is cheap to
# reuse.
#
# Usage: tools/asan_check.sh [ctest -R pattern]
#   tools/asan_check.sh               # full suite under ASan/UBSan
#   tools/asan_check.sh Streaming     # just the streaming tests
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}
PATTERN=${1:-}

cmake -B "$BUILD_DIR" -S . -DPINGMESH_SANITIZE=address
cmake --build "$BUILD_DIR" -j
if [[ -n "$PATTERN" ]]; then
  (cd "$BUILD_DIR" && ctest --output-on-failure -R "$PATTERN")
else
  (cd "$BUILD_DIR" && ctest --output-on-failure)
fi

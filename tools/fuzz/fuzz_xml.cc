// libFuzzer harness for xml::parse — the pinglist decoder consumes bytes
// fetched over HTTP from the controller, so it must never crash or hang on
// arbitrary input. Contract: parse() either returns a tree or throws the
// position-annotated std::runtime_error; anything else (OOB, stack
// overflow, uncaught bad_alloc) is a finding.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string_view>

#include "common/xml.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  std::string_view doc(reinterpret_cast<const char*>(data), size);
  try {
    auto root = pingmesh::xml::parse(doc);
    // Exercise the accessors fuzz-found trees reach in production code.
    if (root != nullptr) {
      (void)root->child("ping");
      (void)root->attr_or("name", "");
      (void)root->attr_int("interval", 0);
      (void)root->attr_double("weight", 0.0);
    }
  } catch (const std::runtime_error&) {
    // Documented failure mode for malformed documents.
  }
  return 0;
}

// libFuzzer harness for cosmos_io::load_store — the archive loader parses
// whatever file an operator points pingmeshctl at. Contract: a malformed
// file yields nullopt (or a LoadResult with corrupt extents counted and
// dropped); headers must never drive allocations or crashes.
//
// load_store takes a path, so the harness spills each input to one
// per-process scratch file. A small extent_size_limit keeps the
// adversarial-size rejection path reachable with tiny inputs.
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>

#include "dsa/cosmos_io.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  static const std::string kPath =
      "/tmp/pingmesh_fuzz_cosmos_" + std::to_string(::getpid());
  {
    std::ofstream out(kPath, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data), static_cast<std::streamsize>(size));
  }
  constexpr std::size_t kExtentLimit = 64 * 1024;
  if (auto loaded = pingmesh::dsa::load_store(kPath, kExtentLimit)) {
    // Round-trip what survived: save must accept anything load produced.
    (void)pingmesh::dsa::save_store(loaded->store, kPath);
  }
  return 0;
}

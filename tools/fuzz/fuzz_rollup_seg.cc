// libFuzzer harness for the rollup persistence decoders — the bytes a
// restarting serving tier reads back from Cosmos. Three surfaces:
//
//  - RollupStore::restore_state: a checkpoint segment payload. Contract:
//    arbitrary bytes either restore to a store whose conservation ledger
//    holds and whose state re-encodes to the same digest, or are rejected
//    with the store left empty — never a crash, never a lying ledger.
//  - decode_wal_frame / decode_segment_frame: the self-delimiting frame
//    codecs. Contract: false on any malformed prefix, pos never runs past
//    the buffer, no over-read.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "serve/persist.h"
#include "serve/rollup.h"
#include "topology/topology.h"

namespace {

pingmesh::serve::RollupConfig fuzz_config() {
  pingmesh::serve::RollupConfig cfg;
  cfg.tier_width[0] = pingmesh::seconds(10);
  cfg.tier_width[1] = pingmesh::minutes(1);
  cfg.tier_width[2] = pingmesh::minutes(10);
  cfg.seal_grace = pingmesh::seconds(1);
  cfg.future_slack = pingmesh::seconds(30);
  return cfg;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  using namespace pingmesh;
  static const topo::Topology topo =
      topo::Topology::build({topo::small_dc_spec("DC1", "US West")});
  std::string_view bytes(reinterpret_cast<const char*>(data), size);

  serve::RollupStore store(topo, nullptr, fuzz_config());
  if (store.restore_state(bytes)) {
    if (!store.check_conservation()) std::abort();
    // Accepted state must round-trip: re-encode, restore, same digest.
    const std::string re = store.encode_state();
    serve::RollupStore round(topo, nullptr, fuzz_config());
    if (!round.restore_state(re)) std::abort();
    if (round.digest() != store.digest()) std::abort();
  }

  std::size_t pos = 0;
  serve::WalFrame wf;
  while (pos < bytes.size() && serve::decode_wal_frame(bytes, pos, &wf)) {
    if (pos > bytes.size()) std::abort();
  }
  pos = 0;
  serve::SegmentFrame sf;
  while (pos < bytes.size() && serve::decode_segment_frame(bytes, pos, &sf)) {
    if (pos > bytes.size()) std::abort();
  }
  return 0;
}

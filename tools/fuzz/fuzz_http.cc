// libFuzzer harness for the HTTP/1.1 message parsers. Both directions are
// attack surface: parse_request sees whatever connects to the controller's
// pinglist endpoint, parse_response sees whatever an HTTP-ping target sends
// back. Contract: both return nullopt on malformed input — they never
// throw and never crash.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "net/http.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  std::string_view bytes(reinterpret_cast<const char*>(data), size);
  if (auto req = pingmesh::net::parse_request(bytes)) {
    // Round-trip: anything we accept must serialize and re-parse.
    (void)pingmesh::net::parse_request(pingmesh::net::serialize(*req, "fuzz.host"));
  }
  if (auto resp = pingmesh::net::parse_response(bytes)) {
    (void)pingmesh::net::parse_response(pingmesh::net::serialize(*resp));
  }
  return 0;
}

// libFuzzer harness for the HTTP/1.1 message parsers. Both directions are
// attack surface: parse_request sees whatever connects to the controller's
// pinglist endpoint, parse_response sees whatever an HTTP-ping target sends
// back. Contract: both return nullopt on malformed input — they never
// throw and never crash.
//
// etag_match is fuzzed on the same bytes: an If-None-Match header is
// client-controlled, and the quote-aware list scan must terminate on any
// input (the first newline, if present, splits the input into a header
// value and a server-side tag so both arguments see hostile bytes).
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "net/http.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  std::string_view bytes(reinterpret_cast<const char*>(data), size);
  if (auto req = pingmesh::net::parse_request(bytes)) {
    // Round-trip: anything we accept must serialize and re-parse.
    (void)pingmesh::net::parse_request(pingmesh::net::serialize(*req, "fuzz.host"));
  }
  if (auto resp = pingmesh::net::parse_response(bytes)) {
    (void)pingmesh::net::parse_response(pingmesh::net::serialize(*resp));
  }
  std::size_t nl = bytes.find('\n');
  std::string_view header = nl == std::string_view::npos ? bytes : bytes.substr(0, nl);
  std::string_view tag = nl == std::string_view::npos ? std::string_view("\"q-1-abc\"")
                                                      : bytes.substr(nl + 1);
  (void)pingmesh::net::etag_match(header, tag);
  (void)pingmesh::net::etag_match(header, "W/\"q-2\"");
  return 0;
}

// libFuzzer harness for the ScopeQL lexer/parser/evaluator. Queries come
// from operators and dashboards (pingmeshctl), so garbage must surface as
// QueryError with position info — never UB, signed-overflow, or unbounded
// recursion. Runs each input against a small fixed record set so the
// evaluator and renderer are covered, not just the parser.
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "agent/record.h"
#include "dsa/scopeql.h"

namespace {

std::vector<pingmesh::agent::LatencyRecord> fixed_records() {
  std::vector<pingmesh::agent::LatencyRecord> out;
  for (int i = 0; i < 4; ++i) {
    pingmesh::agent::LatencyRecord r;
    r.timestamp = 1'000'000LL * i;
    r.src_ip = pingmesh::IpAddr{0x0a000001u + static_cast<std::uint32_t>(i)};
    r.dst_ip = pingmesh::IpAddr{0x0a000101u};
    r.src_port = static_cast<std::uint16_t>(40000 + i);
    r.dst_port = 80;
    r.success = i % 2 == 0;
    r.rtt = 250'000 + 10'000 * i;
    out.push_back(r);
  }
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  static const std::vector<pingmesh::agent::LatencyRecord> kRecords = fixed_records();
  static const pingmesh::dsa::scopeql::Interpreter kInterp;  // no topology attached
  std::string_view query(reinterpret_cast<const char*>(data), size);
  try {
    auto result = kInterp.run(query, kRecords);
    (void)result.to_table();
  } catch (const pingmesh::dsa::scopeql::QueryError&) {
    // Documented failure mode for malformed queries.
  }
  return 0;
}

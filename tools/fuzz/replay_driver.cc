// Standalone driver for the fuzz harnesses: runs LLVMFuzzerTestOneInput
// over files (or directories of files) named on the command line, once
// each. This is how fuzz-found inputs stay permanent regressions — the
// corpus_replay_* ctests run every checked-in corpus file through the
// harness in ordinary (non-libFuzzer, non-clang) builds.
//
// With --min-files=N the driver fails if fewer than N inputs were found,
// so a renamed or emptied corpus directory cannot silently pass.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

namespace fs = std::filesystem;

std::vector<std::string> collect_inputs(int argc, char** argv, std::size_t& min_files) {
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--min-files=", 0) == 0) {
      min_files = static_cast<std::size_t>(std::stoul(arg.substr(strlen("--min-files="))));
      continue;
    }
    if (fs::is_directory(arg)) {
      for (const auto& entry : fs::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else {
      files.push_back(arg);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t min_files = 1;
  std::vector<std::string> files = collect_inputs(argc, argv, min_files);
  if (files.size() < min_files) {
    std::fprintf(stderr, "replay: found %zu input file(s), expected at least %zu\n",
                 files.size(), min_files);
    return 1;
  }
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "replay: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    std::printf("replay: %s (%zu bytes)\n", path.c_str(), bytes.size());
    std::fflush(stdout);  // mark progress before a potential harness crash
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
  }
  std::printf("replay: %zu input(s) OK\n", files.size());
  return 0;
}

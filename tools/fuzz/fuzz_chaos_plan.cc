// libFuzzer harness for chaos::parse_plan — plan files come from operators
// and from shrunken-reproducer output, so the parser must be total on
// arbitrary bytes. Contract: malformed input yields nullopt (never a crash
// or unbounded allocation), and any plan that parses round-trips through
// the canonical serializer: parse(to_text(parse(x))) == parse(x).
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "chaos/plan.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  auto plan = pingmesh::chaos::parse_plan(input);
  if (!plan) return 0;
  std::string canonical = pingmesh::chaos::to_text(*plan);
  auto replayed = pingmesh::chaos::parse_plan(canonical);
  if (!replayed || !(*replayed == *plan)) __builtin_trap();
  return 0;
}

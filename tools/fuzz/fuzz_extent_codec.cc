// libFuzzer harness for the binary columnar extent decoder — extents cross
// a process/disk boundary via cosmos_io, so decode_columnar parses
// untrusted bytes. Contract: never crash, never allocate from unvalidated
// counts, and account every claimed-but-unrecovered row in DecodeStats
// (rows out must equal rows_decoded). Whatever decodes must re-encode and
// decode back to the identical row set.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "dsa/extent_codec.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  constexpr std::size_t kLimit = 256 * 1024;  // keep adversarial counts cheap
  if (size > kLimit) return 0;
  std::string_view input(reinterpret_cast<const char*>(data), size);

  pingmesh::agent::DecodeStats stats;
  pingmesh::agent::RecordColumns cols = pingmesh::dsa::decode_columnar(input, &stats);
  if (cols.size() != stats.rows_decoded) __builtin_trap();

  // Round-trip the surviving rows: encode must accept anything decode
  // produced, and the second decode must reproduce it exactly.
  std::string re = pingmesh::dsa::encode_columnar(cols);
  pingmesh::agent::DecodeStats stats2;
  pingmesh::agent::RecordColumns again = pingmesh::dsa::decode_columnar(re, &stats2);
  if (stats2.rows_dropped != 0) __builtin_trap();
  if (again.size() != cols.size()) __builtin_trap();
  if (again.encode_csv() != cols.encode_csv()) __builtin_trap();
  return 0;
}

// pingmeshctl — the operator's command-line companion.
//
//   pingmeshctl pinglist <server-index> [--size small|medium|large] [--dcs N]
//       print the pinglist XML the controller would serve to that server
//   pingmeshctl simulate [--hours H] [--seed S] [--size ...] [--save FILE]
//       run the full closed loop and print the network report
//   pingmeshctl report --load FILE [--size ...]
//       re-run the SCOPE jobs over an archived Cosmos store and report
//   pingmeshctl heatmap [--scenario normal|podset-down|podset-failure|spine-failure]
//                       [--ppm FILE]
//       probe a scenario, render the Figure-8 heatmap, classify the pattern
//   pingmeshctl traceroute <src-index> <dst-index> [--port P] [--seed S]
//       resolve and print the ECMP path a probe five-tuple takes
//   pingmeshctl drops [--rounds N] [--seed S]
//       print the per-DC intra/inter-pod drop-rate table
//   pingmeshctl query --load FILE "SELECT ... FROM latency ..."
//       run a ScopeQL query over an archived Cosmos store
//       (e.g. "SELECT pod(src_ip), COUNT(*), P99(rtt), DROPRATE()
//              FROM latency WHERE success GROUP BY pod(src_ip)
//              ORDER BY DROPRATE DESC LIMIT 10")
//   pingmeshctl query heatmap|sla|topk [--minutes M] [--sim-minutes M]
//                    [--k N] [--metric p99|drop|failure] [--service NAME]
//                    [--dc NAME] [--seed S]
//       run the closed loop with serving-tier rollups attached and answer
//       the request from the materialized RollupStore via the QueryService
//       (the interactive read path; prints the endpoint's JSON)
//   pingmeshctl metrics [--minutes M] [--seed S] [--workers N] [--filter p1,p2]
//                       [--serve]
//       run the closed loop with observability on and print the fleet-wide
//       Prometheus-style metrics exposition (optionally prefix-filtered);
//       --serve also attaches rollups + QueryService so serve.* series
//       appear
//   pingmeshctl trace [--minutes M] [--seed S] [--sample N] [--id KEY]
//       run with the data-path tracer on and print one sampled record's
//       end-to-end span timeline (probe -> buffer -> upload -> extent
//       append -> streaming ingest -> SCOPE scan)
//   pingmeshctl chaos run --plan FILE [--workers N] [--break fail-closed]
//       replay a chaos plan file and print the invariant report (exit 1 on
//       a violation); --break fail-closed plants the defect the hunter
//       must catch
//   pingmeshctl chaos random [--seed S]
//       print the seeded random plan for a generator seed
//   pingmeshctl chaos hunt [--start-seed S] [--seeds N] [--workers W]
//                          [--break fail-closed]
//       run random plans until one violates an invariant, then shrink it
//       and print the minimal reproducer (exit 3 if all plans pass)
//   pingmeshctl soak [--seed S] [--episodes N] [--minutes M] [--workers W]
//                    [--json]
//       run the closed-loop self-healing soak: seeded chaos episodes with
//       the HealingLoop attached, reporting MTTD/MTTR, false reloads,
//       missed repairs and SLA before/after repair (exit 1 when a gate
//       fails); --json prints the machine-readable report
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/droprate.h"
#include "analysis/heatmap.h"
#include "chaos/engine.h"
#include "controller/generator.h"
#include "core/fleet.h"
#include "core/scenarios.h"
#include "core/simulation.h"
#include "dsa/cosmos_io.h"
#include "dsa/report.h"
#include "dsa/scope.h"
#include "dsa/scopeql.h"
#include "heal/soak.h"
#include "netsim/simnet.h"
#include "serve/query_service.h"
#include "serve/rollup.h"

namespace {

using namespace pingmesh;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  static Args parse(int argc, char** argv) {
    Args args;
    for (int i = 2; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) == 0) {
        std::string key = a.substr(2);
        std::string value = "true";
        if (i + 1 < argc && argv[i + 1][0] != '-') value = argv[++i];
        args.flags[key] = value;
      } else {
        args.positional.push_back(a);
      }
    }
    return args;
  }

  [[nodiscard]] std::string flag(const std::string& key, const std::string& def) const {
    auto it = flags.find(key);
    return it != flags.end() ? it->second : def;
  }
  [[nodiscard]] long flag_int(const std::string& key, long def) const {
    auto it = flags.find(key);
    return it != flags.end() ? std::stol(it->second) : def;
  }
};

topo::Topology build_topology(const Args& args) {
  std::string size = args.flag("size", "small");
  int dcs = static_cast<int>(args.flag_int("dcs", 1));
  std::vector<topo::DcSpec> specs;
  for (int d = 0; d < dcs; ++d) {
    std::string name = "DC" + std::to_string(d + 1);
    if (size == "large") {
      specs.push_back(topo::large_dc_spec(name, "region-" + std::to_string(d)));
    } else if (size == "medium") {
      specs.push_back(topo::medium_dc_spec(name, "region-" + std::to_string(d)));
    } else {
      specs.push_back(topo::small_dc_spec(name, "region-" + std::to_string(d)));
    }
  }
  return topo::Topology::build(specs);
}

int cmd_pinglist(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: pingmeshctl pinglist <server-index> [--size ...]\n");
    return 2;
  }
  topo::Topology topo = build_topology(args);
  auto index = static_cast<std::uint32_t>(std::stoul(args.positional[0]));
  if (index >= topo.server_count()) {
    std::fprintf(stderr, "server index out of range (fleet has %zu servers)\n",
                 topo.server_count());
    return 2;
  }
  controller::GeneratorConfig cfg;
  cfg.enable_inter_dc = topo.dcs().size() > 1;
  controller::PinglistGenerator gen(topo, cfg);
  std::fputs(gen.generate_for(ServerId{index}).to_xml().c_str(), stdout);
  return 0;
}

int cmd_simulate(const Args& args) {
  core::SimulationConfig cfg = core::small_test_config(
      static_cast<std::uint64_t>(args.flag_int("seed", 42)));
  core::PingmeshSimulation sim(cfg);
  const auto& pod0 = sim.topology().pods()[0];
  sim.services().add_service("Search", pod0.servers);
  long hours_to_run = args.flag_int("hours", 2);
  std::printf("simulating %ld hour(s) of %zu servers...\n", hours_to_run,
              sim.topology().server_count());
  // A little slack past the last window so the hourly SCOPE jobs fire.
  sim.run_for(hours(hours_to_run) + minutes(15));
  std::printf("%lu probes, %lu records, %zu db rows\n\n",
              static_cast<unsigned long>(sim.total_probes()),
              static_cast<unsigned long>(sim.cosmos().total_records()),
              sim.db().total_rows());
  dsa::ReportOptions opts;
  std::fputs(dsa::render_network_report(sim.db(), sim.topology(), &sim.services(), opts)
                 .c_str(),
             stdout);
  std::string save = args.flag("save", "");
  if (!save.empty()) {
    if (dsa::save_store(sim.cosmos(), save)) {
      std::printf("\ncosmos store archived to %s\n", save.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", save.c_str());
      return 1;
    }
  }
  return 0;
}

int cmd_report(const Args& args) {
  std::string path = args.flag("load", "");
  if (path.empty()) {
    std::fprintf(stderr, "usage: pingmeshctl report --load FILE [--size ...]\n");
    return 2;
  }
  auto loaded = dsa::load_store(path);
  if (!loaded) {
    std::fprintf(stderr, "cannot load cosmos store from %s\n", path.c_str());
    return 1;
  }
  std::printf("loaded %zu stream(s), %zu extent(s), %zu corrupt dropped\n",
              loaded->streams, loaded->extents, loaded->corrupt_dropped);
  topo::Topology topo = build_topology(args);
  const dsa::CosmosStream* stream = loaded->store.find(dsa::kLatencyStream);
  if (stream == nullptr) {
    std::fprintf(stderr, "no latency stream in the archive\n");
    return 1;
  }
  SimTime last = 0;
  for (const auto& e : stream->extents()) last = std::max(last, e.last_ts);
  dsa::Database db;
  dsa::JobContext ctx{&topo, nullptr, &db};
  dsa::run_sla_job(*stream, ctx, 0, last + 1, /*include_server_rows=*/false);
  dsa::run_pod_pair_job(*stream, ctx, 0, last + 1);
  std::fputs(dsa::render_network_report(db, topo, nullptr).c_str(), stdout);
  return 0;
}

int cmd_heatmap(const Args& args) {
  topo::Topology topo = build_topology(args);
  netsim::SimNetwork net(topo, static_cast<std::uint64_t>(args.flag_int("seed", 8)));
  std::string scenario = args.flag("scenario", "normal");
  if (scenario == "podset-down") {
    net.faults().add_podset_down(topo.podsets()[0].id);
  } else if (scenario == "podset-failure") {
    for (SwitchId leaf : topo.podsets()[1].leaves) {
      net.faults().add_congestion(leaf, 120.0, 0.003);
    }
    for (PodId pod : topo.podsets()[1].pods) {
      net.faults().add_congestion(topo.pod(pod).tor, 120.0, 0.003);
    }
  } else if (scenario == "spine-failure") {
    for (SwitchId spine : topo.dcs()[0].spines) {
      net.faults().add_congestion(spine, 150.0, 0.002);
    }
  } else if (scenario != "normal") {
    std::fprintf(stderr, "unknown scenario %s\n", scenario.c_str());
    return 2;
  }

  controller::GeneratorConfig gcfg;
  gcfg.enable_inter_dc = false;
  controller::PinglistGenerator gen(topo, gcfg);
  core::FleetProbeDriver driver(topo, net, gen);
  std::vector<agent::LatencyRecord> records;
  driver.run_dense(0, 60, seconds(10), [&](const core::FleetProbe& p) {
    agent::LatencyRecord r;
    r.timestamp = p.time;
    r.src_ip = topo.server(p.src).ip;
    r.dst_ip = p.target->ip;
    r.success = p.outcome.success;
    r.rtt = p.outcome.rtt;
    records.push_back(r);
  });
  dsa::CosmosStore store;
  dsa::CosmosStream& stream = store.stream(dsa::kLatencyStream);
  stream.append(agent::encode_batch(records), records.size(), 0, minutes(10), minutes(10));
  dsa::Database db;
  dsa::JobContext ctx{&topo, nullptr, &db};
  dsa::run_pod_pair_job(stream, ctx, 0, minutes(10));

  analysis::Heatmap map(topo, DcId{0});
  map.load(db.latest_pod_pair_window());
  std::fputs(map.ascii().c_str(), stdout);
  analysis::PatternResult pattern = analysis::classify_pattern(map);
  std::printf("pattern: %s\n", analysis::latency_pattern_name(pattern.pattern));
  std::string ppm = args.flag("ppm", "");
  if (!ppm.empty()) {
    std::ofstream(ppm, std::ios::binary) << map.to_ppm(8);
    std::printf("wrote %s\n", ppm.c_str());
  }
  return 0;
}

int cmd_traceroute(const Args& args) {
  if (args.positional.size() < 2) {
    std::fprintf(stderr, "usage: pingmeshctl traceroute <src-index> <dst-index>\n");
    return 2;
  }
  topo::Topology topo = build_topology(args);
  auto src = static_cast<std::uint32_t>(std::stoul(args.positional[0]));
  auto dst = static_cast<std::uint32_t>(std::stoul(args.positional[1]));
  if (src >= topo.server_count() || dst >= topo.server_count()) {
    std::fprintf(stderr, "server index out of range\n");
    return 2;
  }
  netsim::SimNetwork net(topo, static_cast<std::uint64_t>(args.flag_int("seed", 1)));
  auto port = static_cast<std::uint16_t>(args.flag_int("port", 40000));
  FiveTuple tuple{topo.server(ServerId{src}).ip, topo.server(ServerId{dst}).ip, port,
                  33100, 6};
  std::printf("traceroute %s -> %s (src port %u)\n",
              topo.server(ServerId{src}).name.c_str(),
              topo.server(ServerId{dst}).name.c_str(), port);
  netsim::Path path = net.router().resolve(tuple);
  for (std::size_t i = 0; i < path.hops.size(); ++i) {
    const topo::Switch& sw = topo.sw(path.hops[i].sw);
    std::printf("  %2zu  %-14s (%s)\n", i + 1, sw.name.c_str(),
                topo::switch_kind_name(sw.kind));
  }
  if (path.hops.empty()) std::printf("  (loopback)\n");
  return 0;
}

int cmd_drops(const Args& args) {
  topo::Topology topo = build_topology(args);
  netsim::SimNetwork net(topo, static_cast<std::uint64_t>(args.flag_int("seed", 5)));
  controller::GeneratorConfig gcfg;
  gcfg.enable_inter_dc = false;
  controller::PinglistGenerator gen(topo, gcfg);
  core::FleetProbeDriver driver(topo, net, gen);
  long rounds = args.flag_int("rounds", 20);

  struct Acc {
    analysis::DropEstimate intra, inter;
  };
  std::vector<Acc> acc(topo.dcs().size());
  driver.run_dense(0, static_cast<int>(rounds), seconds(10),
                   [&](const core::FleetProbe& p) {
                     if (!p.dst.valid()) return;
                     const topo::Server& s = topo.server(p.src);
                     const topo::Server& d = topo.server(p.dst);
                     analysis::DropEstimate& e =
                         s.pod == d.pod ? acc[s.dc.value].intra : acc[s.dc.value].inter;
                     if (!p.outcome.success) {
                       ++e.failed_probes;
                       return;
                     }
                     ++e.successful_probes;
                     if (p.outcome.syn_transmissions == 2) ++e.probes_3s;
                     if (p.outcome.syn_transmissions == 3) ++e.probes_9s;
                   });
  std::printf("%-8s %14s %14s\n", "DC", "intra-pod", "inter-pod");
  for (std::size_t d = 0; d < acc.size(); ++d) {
    std::printf("%-8s %14s %14s\n", topo.dc(DcId{static_cast<std::uint32_t>(d)}).name.c_str(),
                format_rate(acc[d].intra.rate()).c_str(),
                format_rate(acc[d].inter.rate()).c_str());
  }
  return 0;
}

/// The interactive read path: build rollups live from a short simulated
/// run, then answer one QueryService request from the materialized cells.
int cmd_query_serve(const Args& args, const std::string& endpoint) {
  core::SimulationConfig cfg =
      core::streaming_test_config(static_cast<std::uint64_t>(args.flag_int("seed", 42)));
  core::PingmeshSimulation sim(cfg);
  const topo::Topology& topo = sim.topology();
  sim.services().add_service("Search", topo.pod(PodId{0}).servers);
  sim.services().add_service("Storage", topo.pod(PodId{1}).servers);

  serve::RollupConfig rcfg;
  rcfg.tier_width[0] = minutes(1);
  rcfg.tier_width[1] = minutes(10);
  rcfg.tier_width[2] = hours(1);
  serve::RollupStore store(topo, &sim.services(), rcfg);
  serve::RecordTapFanout fanout;
  if (sim.streaming() != nullptr) fanout.add(sim.streaming());
  fanout.add(&store);
  sim.uploader_for_test().set_tap(&fanout);

  long sim_mins = args.flag_int("sim-minutes", 10);
  std::fprintf(stderr, "simulating %ld minute(s) of %zu servers...\n", sim_mins,
               topo.server_count());
  sim.run_for(minutes(sim_mins));
  std::fprintf(stderr, "rollups: %llu records in %zu cells, staleness %llds\n",
               static_cast<unsigned long long>(store.placed()), store.cell_count(),
               static_cast<long long>((store.now() - store.sealed_until(0)) /
                                      kNanosPerSecond));

  std::string path = "/query/" + endpoint + "?minutes=" + args.flag("minutes", "60");
  if (endpoint == "sla") path += "&service=" + args.flag("service", "Search");
  if (endpoint == "topk") {
    path += "&k=" + args.flag("k", "10") + "&metric=" + args.flag("metric", "p99");
  }
  if (args.flags.count("dc") != 0) path += "&dc=" + args.flag("dc", "");

  serve::QueryService svc(topo, store, &sim.services());
  net::HttpResponse resp = svc.handle({"GET", path, {}, ""});
  std::fprintf(stderr, "GET %s -> %d\n", path.c_str(), resp.status);
  std::printf("%s\n", resp.body.c_str());
  return resp.status == 200 ? 0 : 1;
}

int cmd_query(const Args& args) {
  if (!args.positional.empty() &&
      (args.positional[0] == "heatmap" || args.positional[0] == "sla" ||
       args.positional[0] == "topk")) {
    return cmd_query_serve(args, args.positional[0]);
  }
  std::string path = args.flag("load", "");
  if (path.empty() || args.positional.empty()) {
    std::fprintf(stderr,
                 "usage: pingmeshctl query --load FILE \"SELECT ...\"\n"
                 "       pingmeshctl query heatmap|sla|topk [--minutes M] [--k N]\n"
                 "               [--metric p99|drop|failure] [--service NAME] [--dc NAME]\n");
    return 2;
  }
  auto loaded = dsa::load_store(path);
  if (!loaded) {
    std::fprintf(stderr, "cannot load cosmos store from %s\n", path.c_str());
    return 1;
  }
  const dsa::CosmosStream* stream = loaded->store.find(dsa::kLatencyStream);
  if (stream == nullptr) {
    std::fprintf(stderr, "no latency stream in the archive\n");
    return 1;
  }
  SimTime last = 0;
  for (const auto& e : stream->extents()) last = std::max(last, e.last_ts);
  auto records = dsa::scope::extract_records(*stream, 0, last + 1).rows();

  topo::Topology topo = build_topology(args);
  dsa::scopeql::Interpreter ql(&topo);
  try {
    auto result = ql.run(args.positional[0], records);
    std::fputs(result.to_table().c_str(), stdout);
    std::printf("(%zu rows over %zu records)\n", result.rows.size(), records.size());
  } catch (const dsa::scopeql::QueryError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}

int cmd_metrics(const Args& args) {
  core::SimulationConfig cfg = core::observability_test_config(
      static_cast<std::uint64_t>(args.flag_int("seed", 42)));
  cfg.worker_threads = static_cast<int>(args.flag_int("workers", 1));
  core::PingmeshSimulation sim(cfg);
  long mins = args.flag_int("minutes", 30);

  // --serve: attach the serving tier so its serve.* instruments register
  // and move (rollups from the uploader tap, a few QueryService calls).
  bool with_serve = args.flags.count("serve") != 0;
  std::unique_ptr<serve::RollupStore> store;
  serve::RecordTapFanout fanout;
  if (with_serve) {
    serve::RollupConfig rcfg;
    rcfg.tier_width[0] = minutes(1);
    rcfg.tier_width[1] = minutes(10);
    rcfg.tier_width[2] = hours(1);
    store = std::make_unique<serve::RollupStore>(sim.topology(), &sim.services(), rcfg);
    if (sim.streaming() != nullptr) fanout.add(sim.streaming());
    fanout.add(store.get());
    sim.uploader_for_test().set_tap(&fanout);
  }

  std::fprintf(stderr, "simulating %ld minute(s) of %zu servers (workers=%d)...\n",
               mins, sim.topology().server_count(), sim.worker_threads());
  sim.run_for(minutes(mins));

  // The service must outlive expose(): its callback gauges (cache size,
  // rollup version) are evaluated at exposition time.
  std::unique_ptr<serve::QueryService> svc;
  if (with_serve) {
    svc = std::make_unique<serve::QueryService>(sim.topology(), *store, &sim.services());
    svc->enable_observability(sim.observability()->metrics());
    (void)svc->handle({"GET", "/query/heatmap?minutes=60", {}, ""});
    (void)svc->handle({"GET", "/query/heatmap?minutes=60", {}, ""});
    (void)svc->handle({"GET", "/query/topk?k=10&metric=p99&minutes=60", {}, ""});
  }
  std::vector<std::string> prefixes;
  std::string filter = args.flag("filter", "");
  for (std::size_t pos = 0; pos < filter.size();) {
    std::size_t comma = filter.find(',', pos);
    if (comma == std::string::npos) comma = filter.size();
    if (comma > pos) prefixes.push_back(filter.substr(pos, comma - pos));
    pos = comma + 1;
  }
  std::fputs(sim.observability()->metrics().expose(prefixes).c_str(), stdout);
  return 0;
}

int cmd_trace(const Args& args) {
  core::SimulationConfig cfg = core::observability_test_config(
      static_cast<std::uint64_t>(args.flag_int("seed", 42)),
      static_cast<std::uint64_t>(args.flag_int("sample", 64)));
  cfg.observability.trace.ring_capacity = 1u << 18;
  core::PingmeshSimulation sim(cfg);
  long mins = args.flag_int("minutes", 25);
  std::fprintf(stderr, "simulating %ld minute(s), tracing 1-in-%ld records...\n",
               mins, args.flag_int("sample", 64));
  sim.run_for(minutes(mins));

  const obs::TraceSink& sink = sim.observability()->sink();
  std::printf("%lu spans recorded, %lu dropped, %zu distinct traces\n",
              static_cast<unsigned long>(sink.spans_recorded()),
              static_cast<unsigned long>(sink.spans_dropped()),
              sink.trace_ids().size());
  std::uint64_t id = static_cast<std::uint64_t>(args.flag_int("id", 0));
  if (id == 0) {
    auto ids = sink.trace_ids();
    if (ids.empty()) {
      std::fprintf(stderr, "no sampled record traces; try --sample 1\n");
      return 1;
    }
    id = ids.front();  // the most complete journey
  }
  std::printf("\ntrace %016llx\n", static_cast<unsigned long long>(id));
  for (const obs::TraceSpan& s : sink.spans_for(id)) {
    std::printf("  %10.3fs .. %10.3fs  %-16s %s\n",
                static_cast<double>(s.start) / 1e9, static_cast<double>(s.end) / 1e9,
                s.stage.c_str(), s.note.c_str());
  }
  return 0;
}

void print_chaos_result(const chaos::ChaosRunResult& result) {
  std::fputs(result.report.to_text().c_str(), stdout);
  const chaos::FleetTotals& t = result.totals;
  std::printf(
      "probes=%llu uploaded=%llu discarded=%llu buffered=%llu "
      "uploads_ok=%llu uploads_failed=%llu log_dup_avoided=%llu\n"
      "cosmos: appended=%llu live=%llu expired=%llu corrupt=%llu\n"
      "slb: backends=%llu healthy=%llu half_open_trials=%llu\n",
      static_cast<unsigned long long>(result.total_probes),
      static_cast<unsigned long long>(t.records_uploaded),
      static_cast<unsigned long long>(t.records_discarded),
      static_cast<unsigned long long>(t.records_buffered),
      static_cast<unsigned long long>(t.uploads_ok),
      static_cast<unsigned long long>(t.uploads_failed),
      static_cast<unsigned long long>(t.log_dup_avoided),
      static_cast<unsigned long long>(t.cosmos_appended),
      static_cast<unsigned long long>(t.cosmos_live),
      static_cast<unsigned long long>(t.cosmos_expired),
      static_cast<unsigned long long>(t.cosmos_corrupt_records),
      static_cast<unsigned long long>(t.slb_backends),
      static_cast<unsigned long long>(t.slb_healthy),
      static_cast<unsigned long long>(t.slb_half_open_trials));
}

int cmd_chaos(const Args& args) {
  const char* chaos_usage =
      "usage: pingmeshctl chaos run --plan FILE [--workers N] [--break fail-closed]\n"
      "       pingmeshctl chaos random [--seed S]\n"
      "       pingmeshctl chaos hunt [--start-seed S] [--seeds N] [--workers W]\n"
      "                              [--break fail-closed]\n";
  if (args.positional.empty()) {
    std::fputs(chaos_usage, stderr);
    return 2;
  }
  chaos::ChaosRunOptions options;
  options.worker_threads = static_cast<int>(args.flag_int("workers", 1));
  options.break_fail_closed = args.flag("break", "") == "fail-closed";

  const std::string& sub = args.positional[0];
  if (sub == "run") {
    std::string path = args.flag("plan", "");
    if (path.empty()) {
      std::fputs(chaos_usage, stderr);
      return 2;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::string error;
    std::optional<chaos::ChaosPlan> plan = chaos::parse_plan(text, &error);
    if (!plan.has_value()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
      return 2;
    }
    std::fprintf(stderr, "replaying %zu event(s), seed %llu (workers=%d)...\n",
                 plan->events.size(), static_cast<unsigned long long>(plan->seed),
                 options.worker_threads);
    chaos::ChaosRunResult result = chaos::run_plan(*plan, options);
    print_chaos_result(result);
    return result.ok() ? 0 : 1;
  }
  if (sub == "random") {
    auto seed = static_cast<std::uint64_t>(args.flag_int("seed", 1));
    std::fputs(chaos::to_text(chaos::generate_random_plan(seed)).c_str(), stdout);
    return 0;
  }
  if (sub == "hunt") {
    auto start = static_cast<std::uint64_t>(args.flag_int("start-seed", 1));
    int attempts = static_cast<int>(args.flag_int("seeds", 20));
    std::fprintf(stderr, "hunting: %d random plan(s) from seed %llu...\n", attempts,
                 static_cast<unsigned long long>(start));
    chaos::HuntResult hunt = chaos::hunt(start, attempts, options);
    if (!hunt.found) {
      std::printf("no invariant violation in %d plan(s) (%d run(s))\n", attempts,
                  hunt.runs);
      return 3;
    }
    std::fprintf(stderr,
                 "seed %llu violates invariants; shrunk to %zu event(s) in %d "
                 "run(s). minimal reproducer:\n",
                 static_cast<unsigned long long>(hunt.seed), hunt.minimal.events.size(),
                 hunt.runs);
    std::fputs(chaos::to_text(hunt.minimal).c_str(), stdout);
    return 0;
  }
  std::fputs(chaos_usage, stderr);
  return 2;
}

int cmd_soak(const Args& args) {
  heal::SoakConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.flag_int("seed", 7));
  cfg.episodes = static_cast<int>(args.flag_int("episodes", 4));
  cfg.episode_duration = minutes(args.flag_int("minutes", 30));
  cfg.worker_threads = static_cast<int>(args.flag_int("workers", 1));
  std::fprintf(stderr, "soaking: %d episode(s) x %ld sim-minute(s), seed %llu (workers=%d)...\n",
               cfg.episodes, args.flag_int("minutes", 30),
               static_cast<unsigned long long>(cfg.seed), cfg.worker_threads);
  heal::SoakReport report = heal::run_soak(cfg);
  std::fputs(args.flag("json", "") == "true" ? report.to_json().c_str()
                                             : report.to_text().c_str(),
             stdout);
  bool ok = report.invariants_ok && report.false_reloads == 0 &&
            report.unrepaired_blackholes == 0;
  return ok ? 0 : 1;
}

void usage() {
  std::fprintf(stderr,
               "pingmeshctl <command> [args]\n"
               "commands: pinglist simulate report heatmap traceroute drops query"
               " metrics trace chaos soak\n"
               "see the header of tools/pingmeshctl.cc for details\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  Args args = Args::parse(argc, argv);
  std::string cmd = argv[1];
  if (cmd == "pinglist") return cmd_pinglist(args);
  if (cmd == "simulate") return cmd_simulate(args);
  if (cmd == "report") return cmd_report(args);
  if (cmd == "heatmap") return cmd_heatmap(args);
  if (cmd == "traceroute") return cmd_traceroute(args);
  if (cmd == "drops") return cmd_drops(args);
  if (cmd == "query") return cmd_query(args);
  if (cmd == "metrics") return cmd_metrics(args);
  if (cmd == "trace") return cmd_trace(args);
  if (cmd == "chaos") return cmd_chaos(args);
  if (cmd == "soak") return cmd_soak(args);
  usage();
  return 2;
}

#!/usr/bin/env bash
# Build the thread-sanitizer configuration and run the concurrency tests:
# the ThreadPool unit tests, the concurrent probe-path test, the
# serial-vs-parallel full-loop identity test, the streaming-path tests
# (the upload-time tap runs in the serial drain phase; the determinism test
# exercises it under 4 workers), and the observability tests (worker shards
# bump shared counters, observe spinlocked histograms, and emit trace spans
# concurrently — ObsSim runs the loop at 4 workers), and the chaos tests
# (the 1-vs-4-worker bit-identity run executes a full fault schedule on
# 4 worker shards). A clean run certifies the fleet tick path
# (SimNetwork::tcp_probe and everything it reaches) is race-free under real
# parallel execution.
#
# Usage: tools/tsan_check.sh [extra ctest -R pattern]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tsan}
PATTERN=${1:-'ThreadPool|Parallel|Streaming|Metrics|Trace|ObsSim|Chaos'}

cmake -B "$BUILD_DIR" -S . -DPINGMESH_SANITIZE=thread
# Build everything, not just parallel_test/streaming_test: the ctest pattern
# below also matches tests discovered from other executables (e.g. the
# ParallelEquivalence cases in core_test), and ctest errors out on a test
# whose binary was never built.
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -R "$PATTERN")

file(REMOVE_RECURSE
  "CMakeFiles/pingmeshctl.dir/pingmeshctl.cc.o"
  "CMakeFiles/pingmeshctl.dir/pingmeshctl.cc.o.d"
  "pingmeshctl"
  "pingmeshctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pingmeshctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pingmeshctl.
# This may be replaced when dependencies are built.

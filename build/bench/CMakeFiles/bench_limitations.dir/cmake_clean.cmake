file(REMOVE_RECURSE
  "CMakeFiles/bench_limitations.dir/bench_limitations.cc.o"
  "CMakeFiles/bench_limitations.dir/bench_limitations.cc.o.d"
  "bench_limitations"
  "bench_limitations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_limitations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_qos_monitoring.dir/bench_qos_monitoring.cc.o"
  "CMakeFiles/bench_qos_monitoring.dir/bench_qos_monitoring.cc.o.d"
  "bench_qos_monitoring"
  "bench_qos_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qos_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_qos_monitoring.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_table1_drop_rates.
# This may be replaced when dependencies are built.

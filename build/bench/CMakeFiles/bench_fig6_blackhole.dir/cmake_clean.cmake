file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_blackhole.dir/bench_fig6_blackhole.cc.o"
  "CMakeFiles/bench_fig6_blackhole.dir/bench_fig6_blackhole.cc.o.d"
  "bench_fig6_blackhole"
  "bench_fig6_blackhole.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_blackhole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

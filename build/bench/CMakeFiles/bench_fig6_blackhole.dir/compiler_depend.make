# Empty compiler generated dependencies file for bench_fig6_blackhole.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_silent_drops.dir/bench_fig7_silent_drops.cc.o"
  "CMakeFiles/bench_fig7_silent_drops.dir/bench_fig7_silent_drops.cc.o.d"
  "bench_fig7_silent_drops"
  "bench_fig7_silent_drops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_silent_drops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

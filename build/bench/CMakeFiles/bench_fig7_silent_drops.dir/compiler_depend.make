# Empty compiler generated dependencies file for bench_fig7_silent_drops.
# This may be replaced when dependencies are built.

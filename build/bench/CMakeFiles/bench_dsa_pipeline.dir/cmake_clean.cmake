file(REMOVE_RECURSE
  "CMakeFiles/bench_dsa_pipeline.dir/bench_dsa_pipeline.cc.o"
  "CMakeFiles/bench_dsa_pipeline.dir/bench_dsa_pipeline.cc.o.d"
  "bench_dsa_pipeline"
  "bench_dsa_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dsa_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

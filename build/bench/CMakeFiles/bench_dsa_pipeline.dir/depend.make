# Empty dependencies file for bench_dsa_pipeline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_interdc.dir/bench_interdc.cc.o"
  "CMakeFiles/bench_interdc.dir/bench_interdc.cc.o.d"
  "bench_interdc"
  "bench_interdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_interdc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/live_probe.dir/live_probe.cpp.o"
  "CMakeFiles/live_probe.dir/live_probe.cpp.o.d"
  "live_probe"
  "live_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

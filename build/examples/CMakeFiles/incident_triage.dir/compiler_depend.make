# Empty compiler generated dependencies file for incident_triage.
# This may be replaced when dependencies are built.

# Empty dependencies file for portal.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for blackhole_hunt.
# This may be replaced when dependencies are built.

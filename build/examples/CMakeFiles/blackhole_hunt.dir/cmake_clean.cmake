file(REMOVE_RECURSE
  "CMakeFiles/blackhole_hunt.dir/blackhole_hunt.cpp.o"
  "CMakeFiles/blackhole_hunt.dir/blackhole_hunt.cpp.o.d"
  "blackhole_hunt"
  "blackhole_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blackhole_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

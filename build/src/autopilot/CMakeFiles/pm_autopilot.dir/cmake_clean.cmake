file(REMOVE_RECURSE
  "CMakeFiles/pm_autopilot.dir/repair.cc.o"
  "CMakeFiles/pm_autopilot.dir/repair.cc.o.d"
  "CMakeFiles/pm_autopilot.dir/service_manager.cc.o"
  "CMakeFiles/pm_autopilot.dir/service_manager.cc.o.d"
  "CMakeFiles/pm_autopilot.dir/watchdog.cc.o"
  "CMakeFiles/pm_autopilot.dir/watchdog.cc.o.d"
  "libpm_autopilot.a"
  "libpm_autopilot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_autopilot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

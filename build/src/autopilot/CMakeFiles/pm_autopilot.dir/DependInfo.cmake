
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autopilot/repair.cc" "src/autopilot/CMakeFiles/pm_autopilot.dir/repair.cc.o" "gcc" "src/autopilot/CMakeFiles/pm_autopilot.dir/repair.cc.o.d"
  "/root/repo/src/autopilot/service_manager.cc" "src/autopilot/CMakeFiles/pm_autopilot.dir/service_manager.cc.o" "gcc" "src/autopilot/CMakeFiles/pm_autopilot.dir/service_manager.cc.o.d"
  "/root/repo/src/autopilot/watchdog.cc" "src/autopilot/CMakeFiles/pm_autopilot.dir/watchdog.cc.o" "gcc" "src/autopilot/CMakeFiles/pm_autopilot.dir/watchdog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libpm_autopilot.a"
)

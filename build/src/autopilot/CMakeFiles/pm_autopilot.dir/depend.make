# Empty dependencies file for pm_autopilot.
# This may be replaced when dependencies are built.

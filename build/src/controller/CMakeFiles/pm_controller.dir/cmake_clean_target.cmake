file(REMOVE_RECURSE
  "libpm_controller.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pm_controller.dir/generator.cc.o"
  "CMakeFiles/pm_controller.dir/generator.cc.o.d"
  "CMakeFiles/pm_controller.dir/pinglist.cc.o"
  "CMakeFiles/pm_controller.dir/pinglist.cc.o.d"
  "CMakeFiles/pm_controller.dir/service.cc.o"
  "CMakeFiles/pm_controller.dir/service.cc.o.d"
  "CMakeFiles/pm_controller.dir/slb.cc.o"
  "CMakeFiles/pm_controller.dir/slb.cc.o.d"
  "libpm_controller.a"
  "libpm_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pm_controller.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/controller/generator.cc" "src/controller/CMakeFiles/pm_controller.dir/generator.cc.o" "gcc" "src/controller/CMakeFiles/pm_controller.dir/generator.cc.o.d"
  "/root/repo/src/controller/pinglist.cc" "src/controller/CMakeFiles/pm_controller.dir/pinglist.cc.o" "gcc" "src/controller/CMakeFiles/pm_controller.dir/pinglist.cc.o.d"
  "/root/repo/src/controller/service.cc" "src/controller/CMakeFiles/pm_controller.dir/service.cc.o" "gcc" "src/controller/CMakeFiles/pm_controller.dir/service.cc.o.d"
  "/root/repo/src/controller/slb.cc" "src/controller/CMakeFiles/pm_controller.dir/slb.cc.o" "gcc" "src/controller/CMakeFiles/pm_controller.dir/slb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/pm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pm_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

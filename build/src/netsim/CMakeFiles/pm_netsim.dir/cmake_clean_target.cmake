file(REMOVE_RECURSE
  "libpm_netsim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pm_netsim.dir/ecmp.cc.o"
  "CMakeFiles/pm_netsim.dir/ecmp.cc.o.d"
  "CMakeFiles/pm_netsim.dir/fault.cc.o"
  "CMakeFiles/pm_netsim.dir/fault.cc.o.d"
  "CMakeFiles/pm_netsim.dir/simnet.cc.o"
  "CMakeFiles/pm_netsim.dir/simnet.cc.o.d"
  "libpm_netsim.a"
  "libpm_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

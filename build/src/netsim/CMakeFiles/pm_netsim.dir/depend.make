# Empty dependencies file for pm_netsim.
# This may be replaced when dependencies are built.

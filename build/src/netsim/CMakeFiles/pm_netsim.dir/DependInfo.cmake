
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/ecmp.cc" "src/netsim/CMakeFiles/pm_netsim.dir/ecmp.cc.o" "gcc" "src/netsim/CMakeFiles/pm_netsim.dir/ecmp.cc.o.d"
  "/root/repo/src/netsim/fault.cc" "src/netsim/CMakeFiles/pm_netsim.dir/fault.cc.o" "gcc" "src/netsim/CMakeFiles/pm_netsim.dir/fault.cc.o.d"
  "/root/repo/src/netsim/simnet.cc" "src/netsim/CMakeFiles/pm_netsim.dir/simnet.cc.o" "gcc" "src/netsim/CMakeFiles/pm_netsim.dir/simnet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/pm_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libpm_topology.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pm_topology.dir/topology.cc.o"
  "CMakeFiles/pm_topology.dir/topology.cc.o.d"
  "libpm_topology.a"
  "libpm_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pm_topology.
# This may be replaced when dependencies are built.

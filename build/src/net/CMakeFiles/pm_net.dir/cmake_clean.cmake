file(REMOVE_RECURSE
  "CMakeFiles/pm_net.dir/http.cc.o"
  "CMakeFiles/pm_net.dir/http.cc.o.d"
  "CMakeFiles/pm_net.dir/reactor.cc.o"
  "CMakeFiles/pm_net.dir/reactor.cc.o.d"
  "CMakeFiles/pm_net.dir/tcp_probe.cc.o"
  "CMakeFiles/pm_net.dir/tcp_probe.cc.o.d"
  "libpm_net.a"
  "libpm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpm_net.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agent/agent.cc" "src/agent/CMakeFiles/pm_agent.dir/agent.cc.o" "gcc" "src/agent/CMakeFiles/pm_agent.dir/agent.cc.o.d"
  "/root/repo/src/agent/counters.cc" "src/agent/CMakeFiles/pm_agent.dir/counters.cc.o" "gcc" "src/agent/CMakeFiles/pm_agent.dir/counters.cc.o.d"
  "/root/repo/src/agent/record.cc" "src/agent/CMakeFiles/pm_agent.dir/record.cc.o" "gcc" "src/agent/CMakeFiles/pm_agent.dir/record.cc.o.d"
  "/root/repo/src/agent/rotating_log.cc" "src/agent/CMakeFiles/pm_agent.dir/rotating_log.cc.o" "gcc" "src/agent/CMakeFiles/pm_agent.dir/rotating_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/pm_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/pm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pm_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for pm_agent.
# This may be replaced when dependencies are built.

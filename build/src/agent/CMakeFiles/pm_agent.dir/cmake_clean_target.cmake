file(REMOVE_RECURSE
  "libpm_agent.a"
)

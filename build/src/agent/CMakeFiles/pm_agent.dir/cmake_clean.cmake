file(REMOVE_RECURSE
  "CMakeFiles/pm_agent.dir/agent.cc.o"
  "CMakeFiles/pm_agent.dir/agent.cc.o.d"
  "CMakeFiles/pm_agent.dir/counters.cc.o"
  "CMakeFiles/pm_agent.dir/counters.cc.o.d"
  "CMakeFiles/pm_agent.dir/record.cc.o"
  "CMakeFiles/pm_agent.dir/record.cc.o.d"
  "CMakeFiles/pm_agent.dir/rotating_log.cc.o"
  "CMakeFiles/pm_agent.dir/rotating_log.cc.o.d"
  "libpm_agent.a"
  "libpm_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/pm_core.dir/fleet.cc.o"
  "CMakeFiles/pm_core.dir/fleet.cc.o.d"
  "CMakeFiles/pm_core.dir/scenarios.cc.o"
  "CMakeFiles/pm_core.dir/scenarios.cc.o.d"
  "CMakeFiles/pm_core.dir/simulation.cc.o"
  "CMakeFiles/pm_core.dir/simulation.cc.o.d"
  "libpm_core.a"
  "libpm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/pm_common.dir/ascii_chart.cc.o"
  "CMakeFiles/pm_common.dir/ascii_chart.cc.o.d"
  "CMakeFiles/pm_common.dir/clock.cc.o"
  "CMakeFiles/pm_common.dir/clock.cc.o.d"
  "CMakeFiles/pm_common.dir/csv.cc.o"
  "CMakeFiles/pm_common.dir/csv.cc.o.d"
  "CMakeFiles/pm_common.dir/log.cc.o"
  "CMakeFiles/pm_common.dir/log.cc.o.d"
  "CMakeFiles/pm_common.dir/stats.cc.o"
  "CMakeFiles/pm_common.dir/stats.cc.o.d"
  "CMakeFiles/pm_common.dir/types.cc.o"
  "CMakeFiles/pm_common.dir/types.cc.o.d"
  "CMakeFiles/pm_common.dir/xml.cc.o"
  "CMakeFiles/pm_common.dir/xml.cc.o.d"
  "libpm_common.a"
  "libpm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/pm_dsa.dir/cosmos.cc.o"
  "CMakeFiles/pm_dsa.dir/cosmos.cc.o.d"
  "CMakeFiles/pm_dsa.dir/cosmos_io.cc.o"
  "CMakeFiles/pm_dsa.dir/cosmos_io.cc.o.d"
  "CMakeFiles/pm_dsa.dir/database.cc.o"
  "CMakeFiles/pm_dsa.dir/database.cc.o.d"
  "CMakeFiles/pm_dsa.dir/jobs.cc.o"
  "CMakeFiles/pm_dsa.dir/jobs.cc.o.d"
  "CMakeFiles/pm_dsa.dir/pa.cc.o"
  "CMakeFiles/pm_dsa.dir/pa.cc.o.d"
  "CMakeFiles/pm_dsa.dir/report.cc.o"
  "CMakeFiles/pm_dsa.dir/report.cc.o.d"
  "CMakeFiles/pm_dsa.dir/scopeql.cc.o"
  "CMakeFiles/pm_dsa.dir/scopeql.cc.o.d"
  "libpm_dsa.a"
  "libpm_dsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_dsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

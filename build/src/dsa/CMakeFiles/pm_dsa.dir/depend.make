# Empty dependencies file for pm_dsa.
# This may be replaced when dependencies are built.

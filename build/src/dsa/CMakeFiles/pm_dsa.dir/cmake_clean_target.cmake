file(REMOVE_RECURSE
  "libpm_dsa.a"
)

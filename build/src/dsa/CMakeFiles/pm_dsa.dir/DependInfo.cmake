
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsa/cosmos.cc" "src/dsa/CMakeFiles/pm_dsa.dir/cosmos.cc.o" "gcc" "src/dsa/CMakeFiles/pm_dsa.dir/cosmos.cc.o.d"
  "/root/repo/src/dsa/cosmos_io.cc" "src/dsa/CMakeFiles/pm_dsa.dir/cosmos_io.cc.o" "gcc" "src/dsa/CMakeFiles/pm_dsa.dir/cosmos_io.cc.o.d"
  "/root/repo/src/dsa/database.cc" "src/dsa/CMakeFiles/pm_dsa.dir/database.cc.o" "gcc" "src/dsa/CMakeFiles/pm_dsa.dir/database.cc.o.d"
  "/root/repo/src/dsa/jobs.cc" "src/dsa/CMakeFiles/pm_dsa.dir/jobs.cc.o" "gcc" "src/dsa/CMakeFiles/pm_dsa.dir/jobs.cc.o.d"
  "/root/repo/src/dsa/pa.cc" "src/dsa/CMakeFiles/pm_dsa.dir/pa.cc.o" "gcc" "src/dsa/CMakeFiles/pm_dsa.dir/pa.cc.o.d"
  "/root/repo/src/dsa/report.cc" "src/dsa/CMakeFiles/pm_dsa.dir/report.cc.o" "gcc" "src/dsa/CMakeFiles/pm_dsa.dir/report.cc.o.d"
  "/root/repo/src/dsa/scopeql.cc" "src/dsa/CMakeFiles/pm_dsa.dir/scopeql.cc.o" "gcc" "src/dsa/CMakeFiles/pm_dsa.dir/scopeql.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/pm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/pm_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/pm_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pm_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/blackhole.cc" "src/analysis/CMakeFiles/pm_analysis.dir/blackhole.cc.o" "gcc" "src/analysis/CMakeFiles/pm_analysis.dir/blackhole.cc.o.d"
  "/root/repo/src/analysis/droprate.cc" "src/analysis/CMakeFiles/pm_analysis.dir/droprate.cc.o" "gcc" "src/analysis/CMakeFiles/pm_analysis.dir/droprate.cc.o.d"
  "/root/repo/src/analysis/heatmap.cc" "src/analysis/CMakeFiles/pm_analysis.dir/heatmap.cc.o" "gcc" "src/analysis/CMakeFiles/pm_analysis.dir/heatmap.cc.o.d"
  "/root/repo/src/analysis/length_dependence.cc" "src/analysis/CMakeFiles/pm_analysis.dir/length_dependence.cc.o" "gcc" "src/analysis/CMakeFiles/pm_analysis.dir/length_dependence.cc.o.d"
  "/root/repo/src/analysis/server_selection.cc" "src/analysis/CMakeFiles/pm_analysis.dir/server_selection.cc.o" "gcc" "src/analysis/CMakeFiles/pm_analysis.dir/server_selection.cc.o.d"
  "/root/repo/src/analysis/silentdrop.cc" "src/analysis/CMakeFiles/pm_analysis.dir/silentdrop.cc.o" "gcc" "src/analysis/CMakeFiles/pm_analysis.dir/silentdrop.cc.o.d"
  "/root/repo/src/analysis/sla.cc" "src/analysis/CMakeFiles/pm_analysis.dir/sla.cc.o" "gcc" "src/analysis/CMakeFiles/pm_analysis.dir/sla.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/pm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/pm_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/pm_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/dsa/CMakeFiles/pm_dsa.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/pm_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pm_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libpm_analysis.a"
)

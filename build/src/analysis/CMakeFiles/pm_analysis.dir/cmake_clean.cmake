file(REMOVE_RECURSE
  "CMakeFiles/pm_analysis.dir/blackhole.cc.o"
  "CMakeFiles/pm_analysis.dir/blackhole.cc.o.d"
  "CMakeFiles/pm_analysis.dir/droprate.cc.o"
  "CMakeFiles/pm_analysis.dir/droprate.cc.o.d"
  "CMakeFiles/pm_analysis.dir/heatmap.cc.o"
  "CMakeFiles/pm_analysis.dir/heatmap.cc.o.d"
  "CMakeFiles/pm_analysis.dir/length_dependence.cc.o"
  "CMakeFiles/pm_analysis.dir/length_dependence.cc.o.d"
  "CMakeFiles/pm_analysis.dir/server_selection.cc.o"
  "CMakeFiles/pm_analysis.dir/server_selection.cc.o.d"
  "CMakeFiles/pm_analysis.dir/silentdrop.cc.o"
  "CMakeFiles/pm_analysis.dir/silentdrop.cc.o.d"
  "CMakeFiles/pm_analysis.dir/sla.cc.o"
  "CMakeFiles/pm_analysis.dir/sla.cc.o.d"
  "libpm_analysis.a"
  "libpm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

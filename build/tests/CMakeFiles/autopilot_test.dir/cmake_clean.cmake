file(REMOVE_RECURSE
  "CMakeFiles/autopilot_test.dir/autopilot_test.cc.o"
  "CMakeFiles/autopilot_test.dir/autopilot_test.cc.o.d"
  "autopilot_test"
  "autopilot_test.pdb"
  "autopilot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopilot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cc" "tests/CMakeFiles/analysis_test.dir/analysis_test.cc.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/autopilot/CMakeFiles/pm_autopilot.dir/DependInfo.cmake"
  "/root/repo/build/src/dsa/CMakeFiles/pm_dsa.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/pm_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/pm_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/pm_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/pm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

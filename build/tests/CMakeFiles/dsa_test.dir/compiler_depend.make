# Empty compiler generated dependencies file for dsa_test.
# This may be replaced when dependencies are built.

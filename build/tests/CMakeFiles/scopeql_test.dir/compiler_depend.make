# Empty compiler generated dependencies file for scopeql_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/scopeql_test.dir/scopeql_test.cc.o"
  "CMakeFiles/scopeql_test.dir/scopeql_test.cc.o.d"
  "scopeql_test"
  "scopeql_test.pdb"
  "scopeql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scopeql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Library micro-benchmarks (google-benchmark): the per-operation costs that
// make or break a production deployment — the agent's record/counter path,
// the controller's pinglist generation, the simulator's probe cost (which
// bounds experiment scale), and the DSA query verbs.
#include <benchmark/benchmark.h>

#include "agent/counters.h"
#include "agent/record.h"
#include "analysis/blackhole.h"
#include "analysis/heatmap.h"
#include "common/stats.h"
#include "common/xml.h"
#include "controller/generator.h"
#include "core/fleet.h"
#include "dsa/jobs.h"
#include "dsa/scope.h"
#include "netsim/simnet.h"
#include "streaming/sketch.h"
#include "topology/topology.h"

namespace {

using namespace pingmesh;

const topo::Topology& medium_topo() {
  static topo::Topology topo =
      topo::Topology::build({topo::medium_dc_spec("DC1", "US West")});
  return topo;
}

controller::GeneratorConfig gen_cfg() {
  controller::GeneratorConfig cfg;
  cfg.enable_inter_dc = false;
  return cfg;
}

void BM_TopologyBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto topo = topo::Topology::build({topo::medium_dc_spec("DC1", "US West")});
    benchmark::DoNotOptimize(topo.server_count());
  }
}
BENCHMARK(BM_TopologyBuild)->Unit(benchmark::kMillisecond);

void BM_PinglistGenerateOne(benchmark::State& state) {
  controller::PinglistGenerator gen(medium_topo(), gen_cfg());
  std::uint32_t i = 0;
  for (auto _ : state) {
    auto pl = gen.generate_for(ServerId{i++ % 800});
    benchmark::DoNotOptimize(pl.targets.size());
  }
}
BENCHMARK(BM_PinglistGenerateOne);

void BM_PinglistXmlRoundTrip(benchmark::State& state) {
  controller::PinglistGenerator gen(medium_topo(), gen_cfg());
  controller::Pinglist pl = gen.generate_for(ServerId{0});
  for (auto _ : state) {
    std::string xml_doc = pl.to_xml();
    auto parsed = controller::Pinglist::from_xml(xml_doc);
    benchmark::DoNotOptimize(parsed.targets.size());
  }
}
BENCHMARK(BM_PinglistXmlRoundTrip);

void BM_EcmpResolve(benchmark::State& state) {
  const topo::Topology& topo = medium_topo();
  netsim::EcmpRouter router(topo);
  ServerId a = topo.pods()[0].servers[0];
  ServerId b = topo.pod(topo.podsets()[2].pods[0]).servers[0];
  std::uint16_t port = 32768;
  for (auto _ : state) {
    FiveTuple t{topo.server(a).ip, topo.server(b).ip, port++, 33100, 6};
    benchmark::DoNotOptimize(router.resolve(t).hops.size());
  }
}
BENCHMARK(BM_EcmpResolve);

void BM_SimTcpProbe(benchmark::State& state) {
  const topo::Topology& topo = medium_topo();
  netsim::SimNetwork net(topo, 1);
  ServerId a = topo.pods()[0].servers[0];
  ServerId b = topo.pod(topo.podsets()[2].pods[0]).servers[0];
  std::uint16_t port = 32768;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.tcp_probe(a, b, port++, 33100, {}, 0).rtt);
  }
}
BENCHMARK(BM_SimTcpProbe);

void BM_HistogramRecord(benchmark::State& state) {
  LatencyHistogram hist;
  Rng rng(7);
  std::int64_t v = 250'000;
  for (auto _ : state) {
    hist.record(v);
    v = static_cast<std::int64_t>(rng.uniform(10'000, 10'000'000));
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  LatencyHistogram hist;
  Rng rng(8);
  for (int i = 0; i < 1'000'000; ++i) {
    hist.record(static_cast<std::int64_t>(rng.lognormal(12.5, 1.0)));
  }
  for (auto _ : state) benchmark::DoNotOptimize(hist.p99());
}
BENCHMARK(BM_HistogramQuantile);

void BM_SketchRecord(benchmark::State& state) {
  streaming::LatencySketch sk;
  Rng rng(7);
  std::int64_t v = 250'000;
  for (auto _ : state) {
    sk.record(v);
    v = static_cast<std::int64_t>(rng.uniform(10'000, 10'000'000));
  }
  benchmark::DoNotOptimize(sk.count());
}
BENCHMARK(BM_SketchRecord);

void BM_SketchMerge(benchmark::State& state) {
  streaming::LatencySketch a;
  streaming::LatencySketch b;
  Rng rng(9);
  for (int i = 0; i < 100'000; ++i) {
    b.record(static_cast<std::int64_t>(rng.uniform(10'000, 10'000'000)));
  }
  for (auto _ : state) {
    a.merge(b);
    benchmark::DoNotOptimize(a.count());
  }
}
BENCHMARK(BM_SketchMerge);

void BM_SketchQuantile(benchmark::State& state) {
  streaming::LatencySketch sk;
  Rng rng(10);
  for (int i = 0; i < 1'000'000; ++i) {
    sk.record(static_cast<std::int64_t>(rng.lognormal(12.5, 1.0)));
  }
  for (auto _ : state) benchmark::DoNotOptimize(sk.p99());
}
BENCHMARK(BM_SketchQuantile);

void BM_RecordCsvEncode(benchmark::State& state) {
  agent::LatencyRecord rec;
  rec.src_ip = IpAddr(10, 0, 0, 1);
  rec.dst_ip = IpAddr(10, 0, 1, 2);
  rec.rtt = 268'000;
  rec.success = true;
  std::vector<agent::LatencyRecord> batch(100, rec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent::encode_batch(batch).size());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_RecordCsvEncode);

void BM_RecordCsvDecode(benchmark::State& state) {
  agent::LatencyRecord rec;
  rec.rtt = 268'000;
  rec.success = true;
  std::vector<agent::LatencyRecord> batch(100, rec);
  std::string encoded = agent::encode_batch(batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent::decode_batch(encoded).size());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_RecordCsvDecode);

void BM_PerfCountersRecord(benchmark::State& state) {
  agent::PerfCounters counters(0);
  for (auto _ : state) counters.record_probe(true, 268'000);
  benchmark::DoNotOptimize(counters.peek(1).probes);
}
BENCHMARK(BM_PerfCountersRecord);

void BM_ScopeAggregateByPod(benchmark::State& state) {
  const topo::Topology& topo = medium_topo();
  std::vector<agent::LatencyRecord> rows;
  Rng rng(9);
  for (int i = 0; i < 50'000; ++i) {
    agent::LatencyRecord r;
    r.src_ip = topo.servers()[rng.uniform_u32(800)].ip;
    r.dst_ip = topo.servers()[rng.uniform_u32(800)].ip;
    r.success = true;
    r.rtt = static_cast<std::int64_t>(rng.lognormal(12.5, 0.6));
    rows.push_back(r);
  }
  dsa::scope::DataSet<agent::LatencyRecord> data(rows);
  for (auto _ : state) {
    auto groups = data.aggregate_by<dsa::LatencyAggregator>(
        [&](const agent::LatencyRecord& r) {
          return topo.server(topo.server_by_ip(r.src_ip)).pod.value;
        });
    benchmark::DoNotOptimize(groups.size());
  }
  state.SetItemsProcessed(state.iterations() * 50'000);
}
BENCHMARK(BM_ScopeAggregateByPod)->Unit(benchmark::kMillisecond);

void BM_BlackholeDetect(benchmark::State& state) {
  const topo::Topology& topo = medium_topo();
  netsim::SimNetwork net(topo, 2);
  net.faults().add_blackhole(topo.pods()[3].tor, netsim::BlackholeMode::kSrcDstPair, 0.05);
  controller::PinglistGenerator gen(topo, gen_cfg());
  core::FleetProbeDriver driver(topo, net, gen);
  std::vector<agent::LatencyRecord> records;
  driver.run_dense(0, 4, seconds(10), [&](const core::FleetProbe& p) {
    agent::LatencyRecord r;
    r.src_ip = topo.server(p.src).ip;
    r.dst_ip = p.target->ip;
    r.success = p.outcome.success;
    r.rtt = p.outcome.rtt;
    records.push_back(r);
  });
  analysis::BlackholeDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(records, topo).candidates.size());
  }
  state.counters["records"] = static_cast<double>(records.size());
}
BENCHMARK(BM_BlackholeDetect)->Unit(benchmark::kMillisecond);

void BM_HeatmapLoadAndClassify(benchmark::State& state) {
  const topo::Topology& topo = medium_topo();
  std::vector<dsa::PodPairStatRow> rows;
  for (const topo::Pod& a : topo.pods()) {
    for (const topo::Pod& b : topo.pods()) {
      dsa::PodPairStatRow r;
      r.src_pod = a.id;
      r.dst_pod = b.id;
      r.probes = r.successes = 100;
      r.p99_ns = millis(1);
      rows.push_back(r);
    }
  }
  analysis::Heatmap map(topo, DcId{0});
  for (auto _ : state) {
    map.load(rows);
    benchmark::DoNotOptimize(analysis::classify_pattern(map).pattern);
  }
}
BENCHMARK(BM_HeatmapLoadAndClassify)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

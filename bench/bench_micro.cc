// Library micro-benchmarks (google-benchmark): the per-operation costs that
// make or break a production deployment — the agent's record/counter path,
// the controller's pinglist generation, the simulator's probe cost (which
// bounds experiment scale), and the DSA query verbs.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "agent/counters.h"
#include "agent/record.h"
#include "analysis/blackhole.h"
#include "analysis/heatmap.h"
#include "common/stats.h"
#include "common/xml.h"
#include "controller/generator.h"
#include "core/fleet.h"
#include "core/scenarios.h"
#include "core/simulation.h"
#include "dsa/jobs.h"
#include "dsa/scope.h"
#include "netsim/simnet.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "streaming/sketch.h"
#include "topology/topology.h"

namespace {

using namespace pingmesh;

const topo::Topology& medium_topo() {
  static topo::Topology topo =
      topo::Topology::build({topo::medium_dc_spec("DC1", "US West")});
  return topo;
}

controller::GeneratorConfig gen_cfg() {
  controller::GeneratorConfig cfg;
  cfg.enable_inter_dc = false;
  return cfg;
}

void BM_TopologyBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto topo = topo::Topology::build({topo::medium_dc_spec("DC1", "US West")});
    benchmark::DoNotOptimize(topo.server_count());
  }
}
BENCHMARK(BM_TopologyBuild)->Unit(benchmark::kMillisecond);

void BM_PinglistGenerateOne(benchmark::State& state) {
  controller::PinglistGenerator gen(medium_topo(), gen_cfg());
  std::uint32_t i = 0;
  for (auto _ : state) {
    auto pl = gen.generate_for(ServerId{i++ % 800});
    benchmark::DoNotOptimize(pl.targets.size());
  }
}
BENCHMARK(BM_PinglistGenerateOne);

void BM_PinglistXmlRoundTrip(benchmark::State& state) {
  controller::PinglistGenerator gen(medium_topo(), gen_cfg());
  controller::Pinglist pl = gen.generate_for(ServerId{0});
  for (auto _ : state) {
    std::string xml_doc = pl.to_xml();
    auto parsed = controller::Pinglist::from_xml(xml_doc);
    benchmark::DoNotOptimize(parsed.targets.size());
  }
}
BENCHMARK(BM_PinglistXmlRoundTrip);

void BM_EcmpResolve(benchmark::State& state) {
  const topo::Topology& topo = medium_topo();
  netsim::EcmpRouter router(topo);
  ServerId a = topo.pods()[0].servers[0];
  ServerId b = topo.pod(topo.podsets()[2].pods[0]).servers[0];
  std::uint16_t port = 32768;
  for (auto _ : state) {
    FiveTuple t{topo.server(a).ip, topo.server(b).ip, port++, 33100, 6};
    benchmark::DoNotOptimize(router.resolve(t).hops.size());
  }
}
BENCHMARK(BM_EcmpResolve);

void BM_SimTcpProbe(benchmark::State& state) {
  const topo::Topology& topo = medium_topo();
  netsim::SimNetwork net(topo, 1);
  ServerId a = topo.pods()[0].servers[0];
  ServerId b = topo.pod(topo.podsets()[2].pods[0]).servers[0];
  std::uint16_t port = 32768;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.tcp_probe(a, b, port++, 33100, {}, 0).rtt);
  }
}
BENCHMARK(BM_SimTcpProbe);

void BM_HistogramRecord(benchmark::State& state) {
  LatencyHistogram hist;
  Rng rng(7);
  std::int64_t v = 250'000;
  for (auto _ : state) {
    hist.record(v);
    v = static_cast<std::int64_t>(rng.uniform(10'000, 10'000'000));
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  LatencyHistogram hist;
  Rng rng(8);
  for (int i = 0; i < 1'000'000; ++i) {
    hist.record(static_cast<std::int64_t>(rng.lognormal(12.5, 1.0)));
  }
  for (auto _ : state) benchmark::DoNotOptimize(hist.p99());
}
BENCHMARK(BM_HistogramQuantile);

void BM_SketchRecord(benchmark::State& state) {
  streaming::LatencySketch sk;
  Rng rng(7);
  std::int64_t v = 250'000;
  for (auto _ : state) {
    sk.record(v);
    v = static_cast<std::int64_t>(rng.uniform(10'000, 10'000'000));
  }
  benchmark::DoNotOptimize(sk.count());
}
BENCHMARK(BM_SketchRecord);

void BM_SketchMerge(benchmark::State& state) {
  streaming::LatencySketch a;
  streaming::LatencySketch b;
  Rng rng(9);
  for (int i = 0; i < 100'000; ++i) {
    b.record(static_cast<std::int64_t>(rng.uniform(10'000, 10'000'000)));
  }
  for (auto _ : state) {
    a.merge(b);
    benchmark::DoNotOptimize(a.count());
  }
}
BENCHMARK(BM_SketchMerge);

void BM_SketchQuantile(benchmark::State& state) {
  streaming::LatencySketch sk;
  Rng rng(10);
  for (int i = 0; i < 1'000'000; ++i) {
    sk.record(static_cast<std::int64_t>(rng.lognormal(12.5, 1.0)));
  }
  for (auto _ : state) benchmark::DoNotOptimize(sk.p99());
}
BENCHMARK(BM_SketchQuantile);

void BM_RecordCsvEncode(benchmark::State& state) {
  agent::LatencyRecord rec;
  rec.src_ip = IpAddr(10, 0, 0, 1);
  rec.dst_ip = IpAddr(10, 0, 1, 2);
  rec.rtt = 268'000;
  rec.success = true;
  std::vector<agent::LatencyRecord> batch(100, rec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent::encode_batch(batch).size());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_RecordCsvEncode);

void BM_RecordCsvDecode(benchmark::State& state) {
  agent::LatencyRecord rec;
  rec.rtt = 268'000;
  rec.success = true;
  std::vector<agent::LatencyRecord> batch(100, rec);
  std::string encoded = agent::encode_batch(batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent::decode_batch(encoded).size());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_RecordCsvDecode);

void BM_PerfCountersRecord(benchmark::State& state) {
  agent::PerfCounters counters(0);
  for (auto _ : state) counters.record_probe(true, 268'000);
  benchmark::DoNotOptimize(counters.peek(1).probes);
}
BENCHMARK(BM_PerfCountersRecord);

void BM_ScopeAggregateByPod(benchmark::State& state) {
  const topo::Topology& topo = medium_topo();
  std::vector<agent::LatencyRecord> rows;
  Rng rng(9);
  for (int i = 0; i < 50'000; ++i) {
    agent::LatencyRecord r;
    r.src_ip = topo.servers()[rng.uniform_u32(800)].ip;
    r.dst_ip = topo.servers()[rng.uniform_u32(800)].ip;
    r.success = true;
    r.rtt = static_cast<std::int64_t>(rng.lognormal(12.5, 0.6));
    rows.push_back(r);
  }
  dsa::scope::DataSet<agent::LatencyRecord> data(rows);
  for (auto _ : state) {
    auto groups = data.aggregate_by<dsa::LatencyAggregator>(
        [&](const agent::LatencyRecord& r) {
          return topo.server(topo.server_by_ip(r.src_ip)).pod.value;
        });
    benchmark::DoNotOptimize(groups.size());
  }
  state.SetItemsProcessed(state.iterations() * 50'000);
}
BENCHMARK(BM_ScopeAggregateByPod)->Unit(benchmark::kMillisecond);

void BM_BlackholeDetect(benchmark::State& state) {
  const topo::Topology& topo = medium_topo();
  netsim::SimNetwork net(topo, 2);
  net.faults().add_blackhole(topo.pods()[3].tor, netsim::BlackholeMode::kSrcDstPair, 0.05);
  controller::PinglistGenerator gen(topo, gen_cfg());
  core::FleetProbeDriver driver(topo, net, gen);
  std::vector<agent::LatencyRecord> records;
  driver.run_dense(0, 4, seconds(10), [&](const core::FleetProbe& p) {
    agent::LatencyRecord r;
    r.src_ip = topo.server(p.src).ip;
    r.dst_ip = p.target->ip;
    r.success = p.outcome.success;
    r.rtt = p.outcome.rtt;
    records.push_back(r);
  });
  analysis::BlackholeDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(records, topo).candidates.size());
  }
  state.counters["records"] = static_cast<double>(records.size());
}
BENCHMARK(BM_BlackholeDetect)->Unit(benchmark::kMillisecond);

void BM_HeatmapLoadAndClassify(benchmark::State& state) {
  const topo::Topology& topo = medium_topo();
  std::vector<dsa::PodPairStatRow> rows;
  for (const topo::Pod& a : topo.pods()) {
    for (const topo::Pod& b : topo.pods()) {
      dsa::PodPairStatRow r;
      r.src_pod = a.id;
      r.dst_pod = b.id;
      r.probes = r.successes = 100;
      r.p99_ns = millis(1);
      rows.push_back(r);
    }
  }
  analysis::Heatmap map(topo, DcId{0});
  for (auto _ : state) {
    map.load(rows);
    benchmark::DoNotOptimize(analysis::classify_pattern(map).pattern);
  }
}
BENCHMARK(BM_HeatmapLoadAndClassify)->Unit(benchmark::kMillisecond);

// --- observability layer costs (DESIGN.md §10: <5% tick overhead budget) ----

void BM_ObsCounterInc(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("agent.probes_total", "result=ok");
  for (auto _ : state) c.inc();
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsCounterLookupAndInc(benchmark::State& state) {
  // The get-or-create path (map lookup under the registry mutex) — what a
  // component pays if it does NOT cache the instrument pointer.
  obs::MetricsRegistry reg;
  for (auto _ : state) {
    reg.counter("agent.probes_total", "result=ok").inc();
  }
  benchmark::DoNotOptimize(reg.instrument_count());
}
BENCHMARK(BM_ObsCounterLookupAndInc);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("agent.buffer_occupancy");
  Rng rng(11);
  std::int64_t v = 250'000;
  for (auto _ : state) {
    h.observe(v);
    v = static_cast<std::int64_t>(rng.uniform(10'000, 10'000'000));
  }
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsExpose(benchmark::State& state) {
  // A fleet-sized registry: ~60 families, like a full simulation run wires.
  obs::MetricsRegistry reg;
  for (int i = 0; i < 50; ++i) {
    reg.counter("agent.family_" + std::to_string(i) + "_total").inc(i);
  }
  for (int i = 0; i < 6; ++i) {
    obs::Histogram& h = reg.histogram("dsa.hist_" + std::to_string(i));
    for (int j = 0; j < 1000; ++j) h.observe(250'000 + j);
  }
  reg.gauge_fn("cosmos.extents", "", [] { return 42.0; });
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.expose().size());
  }
}
BENCHMARK(BM_ObsExpose);

void BM_TraceKeySampledOut(benchmark::State& state) {
  // The common case on the data path: compute the record key, fail the
  // 1-in-64 sampling check, emit nothing.
  obs::TraceSink sink(64);
  obs::Tracer tracer(obs::TraceConfig{true, 64, 64}, sink);
  SimTime ts = 0;
  std::uint64_t sampled = 0;
  for (auto _ : state) {
    std::uint64_t key = obs::trace_key(ts++, 0x0a000001, 0x0a000002, 32768);
    if (tracer.sampled(key)) ++sampled;
  }
  benchmark::DoNotOptimize(sampled);
}
BENCHMARK(BM_TraceKeySampledOut);

void BM_TraceSpanEmit(benchmark::State& state) {
  obs::TraceSink sink(8192);
  obs::Tracer tracer(obs::TraceConfig{true, 1, 8192}, sink);
  SimTime ts = 0;
  for (auto _ : state) {
    tracer.span(1, "agent.probe", ts, ts + 250'000, "success=1;rtt=250000");
    ++ts;
  }
  benchmark::DoNotOptimize(sink.spans_recorded());
}
BENCHMARK(BM_TraceSpanEmit);

/// Five simulated minutes of the small closed loop, observability off vs on
/// — the end-to-end overhead check behind the <5% budget.
void BM_FleetTickObsOff(benchmark::State& state) {
  for (auto _ : state) {
    core::SimulationConfig cfg = core::streaming_test_config(42);
    core::PingmeshSimulation sim(cfg);
    sim.run_for(minutes(5));
    benchmark::DoNotOptimize(sim.total_probes());
  }
}
BENCHMARK(BM_FleetTickObsOff)->Unit(benchmark::kMillisecond);

void BM_FleetTickObsOn(benchmark::State& state) {
  for (auto _ : state) {
    core::SimulationConfig cfg = core::observability_test_config(42);
    core::PingmeshSimulation sim(cfg);
    sim.run_for(minutes(5));
    benchmark::DoNotOptimize(sim.total_probes());
  }
}
BENCHMARK(BM_FleetTickObsOn)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): `--json PATH` is CI shorthand for
// google-benchmark's --benchmark_out=PATH --benchmark_out_format=json.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.push_back(std::string("--benchmark_out=") + argv[i + 1]);
      args.push_back("--benchmark_out_format=json");
      ++i;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  std::vector<char*> cargv;
  cargv.reserve(args.size());
  for (std::string& s : args) cargv.push_back(s.data());
  int cargc = static_cast<int>(cargv.size());
  benchmark::Initialize(&cargc, cargv.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

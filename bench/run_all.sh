#!/usr/bin/env bash
# Run every experiment harness; with --json, drop one BENCH_<name>.json
# report per harness into --out (default: the current directory) so the
# perf trajectory is tracked across PRs. bench_fleet_parallel's report is
# named BENCH_fleet.json — the artifact the CI perf-smoke job gates on.
#
# Usage: bench/run_all.sh [--json] [--out DIR] [--scale small|paper]
#                         [--build DIR] [--only NAME]
set -euo pipefail

json=0
out="."
scale="paper"
build="build"
only=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --json) json=1 ;;
    --out) out="$2"; shift ;;
    --scale) scale="$2"; shift ;;
    --build) build="$2"; shift ;;
    --only) only="$2"; shift ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
  shift
done

cd "$(dirname "$0")/.."
if [[ ! -d "$build/bench" ]]; then
  echo "run_all.sh: no $build/bench — build first (cmake -B $build -S . && cmake --build $build)" >&2
  exit 1
fi
mkdir -p "$out"

benches=(
  bench_fig3_agent_overhead
  bench_fig4_latency_cdf
  bench_fig5_service_sla
  bench_fig6_blackhole
  bench_fig7_silent_drops
  bench_fig8_patterns
  bench_table1_drop_rates
  bench_dsa_pipeline
  bench_ablation
  bench_fleet_parallel
  bench_streaming_freshness
  bench_limitations
  bench_qos_monitoring
  bench_interdc
  bench_serving
)

failed=()
for name in "${benches[@]}"; do
  [[ -n "$only" && "$name" != "$only" ]] && continue
  bin="$build/bench/$name"
  [[ -x "$bin" ]] || { echo "skip $name (not built)"; continue; }
  args=()
  if [[ "$name" == "bench_fleet_parallel" ]]; then
    # The artifact name the CI perf gate and dashboards key on.
    args+=(--scale "$scale")
    [[ $json -eq 1 ]] && args+=(--json "$out/BENCH_fleet.json")
  elif [[ $json -eq 1 ]]; then
    args+=(--json "$out/BENCH_${name#bench_}.json")
  fi
  echo "==================================================================="
  echo ">>> $name ${args[*]}"
  if ! "$bin" "${args[@]}"; then
    failed+=("$name")
  fi
done

if [[ ${#failed[@]} -gt 0 ]]; then
  echo "FAILED: ${failed[*]}" >&2
  exit 1
fi
echo "all benches completed"

// Shared helpers for the experiment harnesses: record collection from the
// fleet driver and uniform table printing (paper value vs measured value).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "agent/record.h"
#include "common/stats.h"
#include "common/types.h"
#include "core/fleet.h"
#include "topology/topology.h"

namespace pingmesh::bench {

inline void heading(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

/// "paper X, measured Y" row.
inline void compare_row(const std::string& label, const std::string& paper,
                        const std::string& measured) {
  std::printf("  %-44s paper: %-14s measured: %s\n", label.c_str(), paper.c_str(),
              measured.c_str());
}

/// Convert a fleet probe into the record shape the analyses consume.
inline agent::LatencyRecord to_record(const topo::Topology& topo,
                                      const core::FleetProbe& p) {
  agent::LatencyRecord r;
  r.timestamp = p.time;
  r.src_ip = topo.server(p.src).ip;
  r.dst_ip = p.target->ip;
  r.src_port = p.src_port;
  r.dst_port = p.target->port;
  r.kind = p.target->kind;
  r.qos = p.target->qos;
  r.success = p.outcome.success;
  r.rtt = p.outcome.rtt;
  r.payload_success = p.outcome.payload_success;
  r.payload_rtt = p.outcome.payload_rtt;
  r.payload_bytes = p.target->payload_bytes;
  return r;
}

inline std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", v * 100.0);
  return buf;
}

}  // namespace pingmesh::bench

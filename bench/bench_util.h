// Shared helpers for the experiment harnesses: record collection from the
// fleet driver, uniform table printing (paper value vs measured value), and
// an optional machine-readable report (`--json <path>`).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "agent/record.h"
#include "common/stats.h"
#include "common/types.h"
#include "core/fleet.h"
#include "topology/topology.h"

namespace pingmesh::bench {

namespace detail {

struct JsonMetric {
  std::string name;
  double value = 0;
  std::string unit;
};

struct JsonRow {
  std::string label;
  std::string paper;
  std::string measured;
};

inline std::vector<JsonMetric>& json_metrics() {
  static std::vector<JsonMetric> v;
  return v;
}

inline std::vector<JsonRow>& json_rows() {
  static std::vector<JsonRow> v;
  return v;
}

inline std::string& json_path() {
  static std::string p;
  return p;
}

inline std::string& json_bench_name() {
  static std::string n;
  return n;
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline void write_json_report() {
  if (json_path().empty()) return;
  std::FILE* f = std::fopen(json_path().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", json_path().c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n", json_escape(json_bench_name()).c_str());
  std::fprintf(f, "  \"metrics\": [");
  const auto& metrics = json_metrics();
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::fprintf(f, "%s\n    {\"name\": \"%s\", \"value\": %.9g, \"unit\": \"%s\"}",
                 i ? "," : "", json_escape(metrics[i].name).c_str(), metrics[i].value,
                 json_escape(metrics[i].unit).c_str());
  }
  std::fprintf(f, "%s],\n", metrics.empty() ? "" : "\n  ");
  std::fprintf(f, "  \"rows\": [");
  const auto& rows = json_rows();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "%s\n    {\"label\": \"%s\", \"paper\": \"%s\", \"measured\": \"%s\"}",
                 i ? "," : "", json_escape(rows[i].label).c_str(),
                 json_escape(rows[i].paper).c_str(), json_escape(rows[i].measured).c_str());
  }
  std::fprintf(f, "%s]\n}\n", rows.empty() ? "" : "\n  ");
  std::fclose(f);
}

}  // namespace detail

/// Parse harness flags. `--json <path>` registers an atexit hook that dumps
/// every compare_row and json_metric seen during the run as a JSON report
/// (the driver collects these as BENCH_<name>.json artifacts).
inline void parse_args(int argc, char** argv) {
  // Touch every report static now so each is constructed before the atexit
  // hook below is registered; destruction happens in reverse order, which
  // keeps them all alive while write_json_report runs.
  detail::json_metrics();
  detail::json_rows();
  if (argc > 0) {
    std::string prog = argv[0];
    auto slash = prog.find_last_of('/');
    detail::json_bench_name() = slash == std::string::npos ? prog : prog.substr(slash + 1);
  }
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      detail::json_path() = argv[++i];
    }
  }
  if (!detail::json_path().empty()) std::atexit(detail::write_json_report);
}

/// Record a numeric metric in the machine-readable report (kept in memory;
/// only written when the harness ran with --json).
inline void json_metric(const std::string& name, double value, const std::string& unit = "") {
  detail::json_metrics().push_back({name, value, unit});
}

inline void heading(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

/// "paper X, measured Y" row.
inline void compare_row(const std::string& label, const std::string& paper,
                        const std::string& measured) {
  std::printf("  %-44s paper: %-14s measured: %s\n", label.c_str(), paper.c_str(),
              measured.c_str());
  detail::json_rows().push_back({label, paper, measured});
}

/// Convert a fleet probe into the record shape the analyses consume.
inline agent::LatencyRecord to_record(const topo::Topology& topo,
                                      const core::FleetProbe& p) {
  agent::LatencyRecord r;
  r.timestamp = p.time;
  r.src_ip = topo.server(p.src).ip;
  r.dst_ip = p.target->ip;
  r.src_port = p.src_port;
  r.dst_port = p.target->port;
  r.kind = p.target->kind;
  r.qos = p.target->qos;
  r.success = p.outcome.success;
  r.rtt = p.outcome.rtt;
  r.payload_success = p.outcome.payload_success;
  r.payload_rtt = p.outcome.payload_rtt;
  r.payload_bytes = p.target->payload_bytes;
  return r;
}

inline std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", v * 100.0);
  return buf;
}

}  // namespace pingmesh::bench

// Table 1 reproduction: intra-pod and inter-pod packet drop rates of five
// data centers, inferred with the paper's SYN-retransmit heuristic (§4.2).
//
// Paper values:
//   DC1 (US West)    1.31e-5   7.55e-5
//   DC2 (US Central) 2.10e-5   7.63e-5
//   DC3 (US East)    9.58e-6   4.00e-5
//   DC4 (Europe)     1.52e-5   5.32e-5
//   DC5 (Asia)       9.82e-6   1.54e-5
//
// Shape targets: every rate in the 1e-4..1e-6 band; inter-pod severalfold
// above intra-pod in every DC; per-DC ordering of the paper's table
// roughly preserved. The heuristic is additionally validated against the
// simulator's ground truth (the paper validated against NIC/ToR counters).
#include <cstdio>

#include "analysis/droprate.h"
#include "bench_util.h"
#include "controller/generator.h"
#include "core/scenarios.h"
#include "netsim/simnet.h"

namespace {

using namespace pingmesh;

struct DcAcc {
  analysis::DropEstimate intra;
  analysis::DropEstimate inter;
  std::uint64_t truth_intra_drops = 0;  // ground truth: probes with >= 1 drop
  std::uint64_t truth_inter_drops = 0;
};

void account(analysis::DropEstimate& e, const netsim::ProbeOutcome& o) {
  if (!o.success) {
    ++e.failed_probes;
    return;
  }
  ++e.successful_probes;
  if (o.syn_transmissions == 2) ++e.probes_3s;
  if (o.syn_transmissions == 3) ++e.probes_9s;
}

std::string rate9(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", r);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  pingmesh::bench::parse_args(argc, argv);
  bench::heading("Table 1: intra-pod and inter-pod packet drop rates, 5 DCs");

  topo::Topology topo = topo::Topology::build(core::five_dc_specs());
  netsim::SimNetwork net(topo, 11);
  core::apply_table1_profiles(net);

  controller::GeneratorConfig gcfg;
  gcfg.enable_inter_dc = false;  // Table 1 is intra-DC
  gcfg.payload_every_kth = 0;
  controller::PinglistGenerator gen(topo, gcfg);
  core::FleetProbeDriver driver(topo, net, gen);

  std::vector<DcAcc> acc(5);
  const int kRounds = 60;
  driver.run_dense(0, kRounds, minutes(1), [&](const core::FleetProbe& p) {
    if (!p.dst.valid()) return;
    const topo::Server& src = topo.server(p.src);
    const topo::Server& dst = topo.server(p.dst);
    DcAcc& a = acc[src.dc.value];
    bool intra = src.pod == dst.pod;
    account(intra ? a.intra : a.inter, p.outcome);
    if (p.outcome.success && p.outcome.packets_dropped > 0) {
      (intra ? a.truth_intra_drops : a.truth_inter_drops) += 1;
    }
  });
  std::printf("  probes fired: %lu (%d dense rounds, 5 medium DCs)\n\n",
              static_cast<unsigned long>(driver.probes_fired()), kRounds);

  static const double kPaperIntra[5] = {1.31e-5, 2.10e-5, 9.58e-6, 1.52e-5, 9.82e-6};
  static const double kPaperInter[5] = {7.55e-5, 7.63e-5, 4.00e-5, 5.32e-5, 1.54e-5};

  std::printf("  %-18s %24s %24s\n", "Data center", "intra-pod (paper/meas)",
              "inter-pod (paper/meas)");
  bool all_in_band = true;
  bool inter_above_intra = true;
  for (std::size_t d = 0; d < 5; ++d) {
    double mi = acc[d].intra.rate();
    double me = acc[d].inter.rate();
    std::printf("  %-18s %10s / %-11s %10s / %-11s\n",
                core::table1_dc_labels()[d].c_str(), rate9(kPaperIntra[d]).c_str(),
                rate9(mi).c_str(), rate9(kPaperInter[d]).c_str(), rate9(me).c_str());
    if (mi < 1e-6 || mi > 1e-4 || me < 5e-6 || me > 3e-4) all_in_band = false;
    if (me <= mi) inter_above_intra = false;
  }

  bench::heading("heuristic vs ground truth (paper: verified on a single-ToR network)");
  for (std::size_t d = 0; d < 5; ++d) {
    double est = acc[d].intra.rate();
    double truth = acc[d].intra.successful_probes
                       ? static_cast<double>(acc[d].truth_intra_drops) /
                             static_cast<double>(acc[d].intra.successful_probes)
                       : 0.0;
    std::printf("  DC%zu intra-pod: heuristic %s vs ground truth %s\n", d + 1,
                rate9(est).c_str(), rate9(truth).c_str());
  }

  bench::heading("shape checks");
  bench::note(std::string("all rates in the 1e-4..1e-6 band: ") +
              (all_in_band ? "yes" : "NO (shape mismatch)"));
  bench::note(std::string("inter-pod > intra-pod in every DC: ") +
              (inter_above_intra ? "yes" : "NO (shape mismatch)"));
  return (all_in_band && inter_above_intra) ? 0 : 1;
}

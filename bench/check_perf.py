#!/usr/bin/env python3
"""CI perf gate: compare one or more BENCH_*.json reports against the
committed baseline (bench/perf_baseline.json).

Rules:
  - min_exact:         metric must equal the baseline value (identity
                       contracts);
  - throughput:        metric must be >= baseline/2 — a >2x regression fails
                       (the divisor absorbs runner-to-runner variance);
  - ratios:            metric must be >= baseline/2 (speedup targets, e.g.
                       the columnar-vs-CSV 3x claim must not quietly halve);
  - latency_ceilings:  metric must be <= baseline*2 — a >2x latency blowup
                       fails (serving P99 and friends).

Usage: check_perf.py BENCH_a.json [BENCH_b.json ...] [baseline.json]

Metrics from all reports are merged (later reports win on name clashes).
The last positional argument is treated as the baseline when its basename
contains "baseline"; otherwise the default bench/perf_baseline.json is used.
"""
import json
import os
import sys


def main() -> int:
    args = sys.argv[1:]
    if not args:
        print(__doc__)
        return 2
    baseline_path = os.path.join(os.path.dirname(__file__), "perf_baseline.json")
    if len(args) > 1 and "baseline" in os.path.basename(args[-1]):
        baseline_path = args[-1]
        args = args[:-1]
    report_paths = args

    metrics = {}
    sources = {}
    for path in report_paths:
        with open(path) as f:
            report = json.load(f)
        for m in report.get("metrics", []):
            metrics[m["name"]] = m["value"]
            sources[m["name"]] = path
    with open(baseline_path) as f:
        baseline = json.load(f)

    failures = []

    def get(name):
        if name not in metrics:
            failures.append(
                f"metric '{name}' missing from {', '.join(report_paths)}"
            )
            return None
        return metrics[name]

    for name, want in baseline.get("min_exact", {}).items():
        got = get(name)
        if got is not None and got != want:
            failures.append(f"{name}: expected exactly {want}, got {got}")

    for section in ("throughput", "ratios"):
        for name, ref in baseline.get(section, {}).items():
            got = get(name)
            floor = ref / 2.0
            if got is not None and got < floor:
                failures.append(
                    f"{name}: {got:.3g} < {floor:.3g} "
                    f"(>2x regression vs baseline {ref:.3g})"
                )
            elif got is not None:
                print(f"ok: {name} = {got:.3g} (floor {floor:.3g})")

    for name, ref in baseline.get("latency_ceilings", {}).items():
        got = get(name)
        ceiling = ref * 2.0
        if got is not None and got > ceiling:
            failures.append(
                f"{name}: {got:.3g} > {ceiling:.3g} "
                f"(>2x latency blowup vs baseline {ref:.3g})"
            )
        elif got is not None:
            print(f"ok: {name} = {got:.3g} (ceiling {ceiling:.3g})")

    if failures:
        print("\nPERF GATE FAILED:")
        for f_ in failures:
            print(f"  - {f_}")
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

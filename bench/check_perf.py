#!/usr/bin/env python3
"""CI perf gate: compare a BENCH_fleet.json report against the committed
baseline (bench/perf_baseline.json).

Rules:
  - min_exact:   metric must equal the baseline value (identity contracts);
  - throughput:  metric must be >= baseline/2 — a >2x regression fails
                 (the divisor absorbs runner-to-runner variance);
  - ratios:      metric must be >= baseline/2 (speedup targets, e.g. the
                 columnar-vs-CSV 3x claim must not quietly halve).

Usage: check_perf.py BENCH_fleet.json [baseline.json]
"""
import json
import os
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    report_path = sys.argv[1]
    baseline_path = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(os.path.dirname(__file__), "perf_baseline.json")
    )
    with open(report_path) as f:
        report = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    metrics = {m["name"]: m["value"] for m in report.get("metrics", [])}
    failures = []

    def get(name):
        if name not in metrics:
            failures.append(f"metric '{name}' missing from {report_path}")
            return None
        return metrics[name]

    for name, want in baseline.get("min_exact", {}).items():
        got = get(name)
        if got is not None and got != want:
            failures.append(f"{name}: expected exactly {want}, got {got}")

    for section in ("throughput", "ratios"):
        for name, ref in baseline.get(section, {}).items():
            got = get(name)
            floor = ref / 2.0
            if got is not None and got < floor:
                failures.append(
                    f"{name}: {got:.3g} < {floor:.3g} "
                    f"(>2x regression vs baseline {ref:.3g})"
                )
            elif got is not None:
                print(f"ok: {name} = {got:.3g} (floor {floor:.3g})")

    if failures:
        print("\nPERF GATE FAILED:")
        for f_ in failures:
            print(f"  - {f_}")
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Figure 5 reproduction: the two network-SLA metrics of one service over a
// normal period — P99 latency and packet drop rate.
//
// Paper: "Figure 5 shows these two metrics for a service in one normal
// week. The packet drop rate is around 4e-5 and the 99th percentile latency
// in a data center is 500-560us. (The latency shows a periodical pattern.
// This is because this service performs high throughput data sync
// periodically which increases the 99th percentile latency.)"
//
// Reproduction: a full-loop simulation over three days; the service's pods
// run a data-sync burst for one hour every six hours (extra queueing on
// their ToRs, no extra loss). Shape targets: flat drop rate in the
// 1e-4..1e-5 band, P99 with clear periodic peaks, neither metric crossing
// the alert thresholds (it is a *normal* week).
#include <cstdio>

#include "analysis/sla.h"
#include "bench_util.h"
#include "common/ascii_chart.h"
#include "core/scenarios.h"
#include "core/simulation.h"

int main(int argc, char** argv) {
  pingmesh::bench::parse_args(argc, argv);
  using namespace pingmesh;
  bench::heading("Figure 5: per-service network SLA over a normal period");

  core::SimulationConfig cfg = core::small_test_config(505);
  cfg.ingestion_delay = minutes(5);
  core::PingmeshSimulation sim(cfg);

  // The service spans the first two pods.
  std::vector<ServerId> members = sim.topology().pods()[0].servers;
  const auto& pod1 = sim.topology().pods()[1].servers;
  members.insert(members.end(), pod1.begin(), pod1.end());
  ServiceId service = sim.services().add_service("Search", members);

  // Periodic data sync: one hour of ToR queue build-up every six hours.
  const SimTime kTotal = days(3);
  for (SimTime start = hours(5); start < kTotal; start += hours(6)) {
    for (std::size_t pod = 0; pod < 2; ++pod) {
      sim.faults().add_congestion(sim.topology().pods()[pod].tor, /*queue_scale=*/2.5,
                                  /*drop_prob=*/0.0, start, start + hours(1));
    }
  }

  sim.run_for(kTotal + hours(2));

  auto series = analysis::sla_time_series(sim.db(), dsa::SlaScope::kService, service.value);
  std::printf("  hourly windows: %zu\n\n", series.size());
  std::printf("  the 99th percentile latency (Figure 5(a) shape):\n");
  double peak_p99 = 0, base_p99 = 1e18;
  double drop_min = 1e18, drop_max = 0;
  std::vector<std::pair<std::string, double>> p99_series;
  std::vector<std::pair<std::string, double>> drop_series;
  for (const auto& point : series) {
    if (point.probes < 100) continue;
    char label[24];
    std::snprintf(label, sizeof(label), "h%02.0f", to_seconds(point.window_start) / 3600.0);
    p99_series.emplace_back(label, to_micros(point.p99_ns));
    drop_series.emplace_back(label, point.drop_rate);
    peak_p99 = std::max(peak_p99, static_cast<double>(point.p99_ns));
    base_p99 = std::min(base_p99, static_cast<double>(point.p99_ns));
    drop_min = std::min(drop_min, point.drop_rate);
    drop_max = std::max(drop_max, point.drop_rate);
  }
  std::fputs(ascii_chart(p99_series, AsciiChartOptions{.width = 50, .unit = "us"}).c_str(),
             stdout);
  std::printf("\n  packet drop rate (Figure 5(b) shape):\n");
  std::fputs(
      ascii_chart(drop_series, AsciiChartOptions{.width = 50, .log_scale = true}).c_str(),
      stdout);

  bench::heading("summary vs paper");
  bench::compare_row("baseline P99 (per-DC value)", "500-560us",
                     format_latency_ns(static_cast<std::int64_t>(base_p99)));
  bench::compare_row("P99 shows periodic data-sync peaks", "yes",
                     peak_p99 > 1.5 * base_p99 ? "yes" : "no");
  bench::compare_row("drop rate band", "~4e-5",
                     format_rate(drop_max > 0 ? drop_max : drop_min));

  // No alerts in a normal week.
  std::size_t alerts = sim.db().alerts.size();
  std::printf("  alerts fired (normal period => none expected): %zu\n", alerts);

  bench::heading("shape checks");
  bool periodic = peak_p99 > 1.5 * base_p99;
  bool drop_in_band = drop_max < 5e-4;
  bool quiet = alerts == 0;
  bench::note(std::string("periodic P99 pattern:      ") + (periodic ? "yes" : "NO"));
  bench::note(std::string("drop rate in normal band:  ") + (drop_in_band ? "yes" : "NO"));
  bench::note(std::string("no SLA alerts:             ") + (quiet ? "yes" : "NO"));
  return (periodic && drop_in_band && quiet) ? 0 : 1;
}

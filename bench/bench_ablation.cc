// Ablations of Pingmesh design choices the paper argues for.
//
//  A. Full participation vs sampled probers (§6.1: "Using only a small
//     number of selected servers for latency measurement limits the
//     coverage") — measure black-hole detection recall when only 1/k of
//     servers probe.
//  B. Fresh source port per probe vs a fixed port (§3.4.1: "to explore the
//     multi-path nature of the network as much as possible") — measure
//     spine path coverage of one server pair, and detectability of a
//     five-tuple black-hole.
//  C. Alert threshold sensitivity (§4.3: drop rate > 1e-3, P99 > 5 ms) —
//     false positives on a healthy fleet vs detection of a real incident
//     across candidate thresholds.
#include <cstdio>
#include <set>

#include "analysis/blackhole.h"
#include "bench_util.h"
#include "common/rng.h"
#include "controller/generator.h"
#include "core/scenarios.h"
#include "netsim/simnet.h"

namespace {

using namespace pingmesh;

controller::GeneratorConfig fleet_cfg() {
  controller::GeneratorConfig cfg;
  cfg.enable_inter_dc = false;
  cfg.payload_every_kth = 0;
  return cfg;
}

// --- Ablation A ------------------------------------------------------------

void ablation_participation() {
  bench::heading("A. full participation vs sampled probers (black-hole recall)");
  std::printf("  %-22s %10s %12s\n", "probers", "recall", "black pairs seen");
  for (int sample : {1, 4, 16, 64}) {
    topo::Topology topo = topo::Topology::build({topo::medium_dc_spec("DC1", "US West")});
    netsim::SimNetwork net(topo, 900 + static_cast<std::uint64_t>(sample));
    Rng rng(1234);
    std::set<std::uint32_t> seeded;
    while (seeded.size() < 6) {
      const topo::Pod& pod =
          topo.pods()[rng.uniform_u32(static_cast<std::uint32_t>(topo.pods().size()))];
      if (seeded.insert(pod.tor.value).second) {
        net.faults().add_blackhole(pod.tor, netsim::BlackholeMode::kSrcDstPair, 0.08, 0,
                                   netsim::FaultInjector::kForever, rng.next_u64());
      }
    }

    controller::PinglistGenerator gen(topo, fleet_cfg());
    core::FleetProbeDriver driver(topo, net, gen);
    std::vector<agent::LatencyRecord> records;
    driver.run_dense(0, 6, seconds(10), [&](const core::FleetProbe& p) {
      if (p.src.value % static_cast<std::uint32_t>(sample) != 0) return;  // sampling
      records.push_back(bench::to_record(topo, p));
    });

    analysis::BlackholeReport report = analysis::BlackholeDetector().detect(records, topo);
    int hits = 0;
    std::uint64_t black_seen = 0;
    for (const auto& s : report.all_scores) black_seen += s.pairs_black;
    for (const auto& c : report.candidates) {
      if (seeded.contains(c.tor.value)) ++hits;
    }
    char label[64];
    std::snprintf(label, sizeof(label), "1 in %d servers", sample);
    std::printf("  %-22s %7d/6 %12lu\n", label, hits,
                static_cast<unsigned long>(black_seen));
  }
  bench::note("paper's position: let all servers participate — recall collapses with sampling");
}

// --- Ablation B ------------------------------------------------------------

void ablation_source_ports() {
  bench::heading("B. fresh source port per probe vs fixed port");
  topo::Topology topo = topo::Topology::build({topo::medium_dc_spec("DC1", "US West")});
  netsim::SimNetwork net(topo, 950);
  ServerId a = topo.podsets()[0].pods.front().value == 0
                   ? topo.pods()[0].servers[0]
                   : topo.pods()[0].servers[0];
  ServerId b =
      topo.pod(topo.podsets()[1].pods[0]).servers[0];  // cross-podset pair

  auto spine_of = [&](std::uint16_t port) {
    FiveTuple t{topo.server(a).ip, topo.server(b).ip, port, 33100, 6};
    netsim::Path path = net.router().resolve(t);
    for (const auto& hop : path.hops) {
      if (topo.sw(hop.sw).kind == topo::SwitchKind::kSpine) return hop.sw.value;
    }
    return 0xffffffffu;
  };

  std::set<std::uint32_t> fresh_spines, fixed_spines;
  for (int i = 0; i < 128; ++i) {
    fresh_spines.insert(spine_of(static_cast<std::uint16_t>(32768 + i)));
    fixed_spines.insert(spine_of(40000));
  }
  std::printf("  spines exercised by one pair over 128 probes: fresh ports %zu/8, fixed port %zu/8\n",
              fresh_spines.size(), fixed_spines.size());

  // Five-tuple black-hole detectability: what fraction of pairs crossing
  // the bad ToR ever observe a failure?
  SwitchId bad_tor = topo.pods()[3].tor;
  net.faults().add_blackhole(bad_tor, netsim::BlackholeMode::kFiveTuple, 0.25);
  controller::PinglistGenerator gen(topo, fleet_cfg());
  auto count_affected = [&](bool fresh_ports) {
    core::FleetProbeDriver driver(topo, net, gen);
    std::map<std::pair<std::uint32_t, std::uint32_t>, int> failures;
    int rounds = 8;
    // Fixed-port mode: overwrite the tuple by re-probing with a constant
    // port through the simulator directly.
    std::set<std::pair<std::uint32_t, std::uint32_t>> pairs_crossing;
    driver.run_dense(0, rounds, seconds(10), [&](const core::FleetProbe& p) {
      if (!p.dst.valid()) return;
      const topo::Server& src = topo.server(p.src);
      const topo::Server& dst = topo.server(p.dst);
      if (src.tor != bad_tor && dst.tor != bad_tor) return;
      auto key = std::make_pair(p.src.value, p.dst.value);
      pairs_crossing.insert(key);
      netsim::ProbeOutcome out =
          fresh_ports ? p.outcome
                      : net.tcp_probe(p.src, p.dst, 40000, 33100, {}, p.time);
      if (!out.success) ++failures[key];
    });
    int detected = 0;
    for (const auto& [key, fails] : failures) {
      if (fails >= 2) ++detected;
    }
    return std::make_pair(detected, static_cast<int>(pairs_crossing.size()));
  };
  auto [fresh_detected, fresh_total] = count_affected(true);
  auto [fixed_detected, fixed_total] = count_affected(false);
  std::printf("  five-tuple black-hole: pairs with repeated failures — fresh ports %d/%d, fixed port %d/%d\n",
              fresh_detected, fresh_total, fixed_detected, fixed_total);
  bench::note("fixed ports freeze each pair onto one path: either always dead or always blind");
}

// --- Ablation C ------------------------------------------------------------

void ablation_thresholds() {
  bench::heading("C. SLA alert threshold sensitivity (drop-rate rule)");
  topo::Topology topo = topo::Topology::build({topo::medium_dc_spec("DC1", "US West")});
  controller::PinglistGenerator gen(topo, fleet_cfg());

  auto measure = [&](bool incident, std::uint64_t seed) {
    netsim::SimNetwork net(topo, seed);
    if (incident) {
      net.faults().add_silent_random_drop(topo.dcs()[0].spines[0], 0.02);
    }
    core::FleetProbeDriver driver(topo, net, gen);
    std::uint64_t ok = 0, sig = 0;
    driver.run_dense(0, 6, seconds(10), [&](const core::FleetProbe& p) {
      if (!p.outcome.success) return;
      ++ok;
      if (p.outcome.syn_transmissions > 1) ++sig;
    });
    return ok ? static_cast<double>(sig) / static_cast<double>(ok) : 0.0;
  };

  std::printf("  %-12s %16s %16s %16s\n", "threshold", "healthy fires?", "incident fires?",
              "verdict");
  double healthy = measure(false, 42);
  double incident = measure(true, 43);
  std::printf("  measured drop rates: healthy %s, spine incident %s\n",
              format_rate(healthy).c_str(), format_rate(incident).c_str());
  for (double threshold : {1e-5, 1e-4, 1e-3, 1e-2}) {
    bool fp = healthy > threshold;
    bool tp = incident > threshold;
    const char* verdict = fp ? "too twitchy" : (tp ? "good" : "misses incident");
    std::printf("  %-12s %16s %16s %16s\n", format_rate(threshold).c_str(),
                fp ? "yes (FP)" : "no", tp ? "yes" : "no (FN)", verdict);
  }
  bench::note("the paper's 1e-3 sits between normal-band noise and real incidents");
}

}  // namespace

int main(int argc, char** argv) {
  pingmesh::bench::parse_args(argc, argv);
  bench::heading("Ablations of Pingmesh design choices");
  ablation_participation();
  ablation_source_ports();
  ablation_thresholds();
  return 0;
}

// §6.4 reproduction: the documented limitations of Pingmesh, as negative
// results.
//
// 1. Single-packet RTT blindness. "A bug introduced in our TCP parameter
//    configuration software rewrote the TCP parameters to their default
//    value. As a result ... the initial congestion window (ICW) reduced
//    from 16 to 4. For long distance TCP sessions, the session finish time
//    increased by several hundreds of milliseconds if the sessions need
//    multiple round trips. Pingmesh did not catch this because it only
//    measures single packet RTT."
//    We regress ICW 16 -> 4 on cross-DC transfers and show that (i)
//    application-perceived session finish time jumps by hundreds of
//    milliseconds while (ii) every Pingmesh metric — connect RTT P50/P99
//    and drop rate — is statistically unchanged.
//
// 2. Tier-not-switch localization: Pingmesh alone identifies the tier; the
//    exact switch needs the traceroute combination (quantified here as the
//    number of spine candidates before/after the traceroute step).
#include <cstdio>

#include "analysis/droprate.h"
#include "analysis/silentdrop.h"
#include "bench_util.h"
#include "common/stats.h"
#include "controller/generator.h"
#include "core/scenarios.h"
#include "netsim/simnet.h"

namespace {

using namespace pingmesh;

struct IcwResult {
  double session_p50_ms = 0;
  double probe_p50_us = 0;
  double probe_p99_us = 0;
  double drop_rate = 0;
  double mean_round_trips = 0;
};

IcwResult run_icw(const topo::Topology& topo, int icw, std::uint64_t seed) {
  netsim::SimNetwork net(topo, seed);
  netsim::WanProfile wan;
  wan.propagation_ms_oneway = 75.0;  // long-distance, the paper's trigger
  net.set_wan_profile(DcId{0}, DcId{1}, wan);

  ServerId a = topo.dcs()[0].servers[0];
  ServerId b = topo.dcs()[1].servers[0];

  IcwResult out;
  // Application view: 256 KB cross-DC transfers.
  std::vector<double> finish_ms;
  double rtts = 0;
  for (int i = 0; i < 300; ++i) {
    netsim::SessionSpec spec;
    spec.total_bytes = 256 * 1024;
    spec.icw_segments = icw;
    auto session = net.tcp_session(a, b, static_cast<std::uint16_t>(32768 + i), 443, spec, 0);
    if (!session.success) continue;
    finish_ms.push_back(to_millis(session.finish_time));
    rtts += session.round_trips;
  }
  out.session_p50_ms = exact_quantile(finish_ms, 0.5);
  out.mean_round_trips = rtts / static_cast<double>(finish_ms.size());

  // Pingmesh view: single-packet connect probes between the same DCs.
  LatencyHistogram hist;
  std::uint64_t ok = 0, sig = 0;
  for (int i = 0; i < 30000; ++i) {
    auto probe = net.tcp_probe(a, b, static_cast<std::uint16_t>(32768 + (i % 28000)),
                               33100, {}, 0);
    if (!probe.success) continue;
    ++ok;
    if (probe.syn_transmissions > 1) {
      ++sig;
    } else {
      hist.record(probe.rtt);
    }
  }
  out.probe_p50_us = to_micros(hist.p50());
  out.probe_p99_us = to_micros(hist.p99());
  out.drop_rate = ok ? static_cast<double>(sig) / static_cast<double>(ok) : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  pingmesh::bench::parse_args(argc, argv);
  bench::heading("Paper section 6.4: what Pingmesh cannot see (negative results)");

  topo::Topology topo = topo::Topology::build(core::two_dc_specs(/*medium=*/false));

  bench::heading("1. ICW regression 16 -> 4 on long-distance sessions");
  IcwResult healthy = run_icw(topo, 16, 64001);
  IcwResult regressed = run_icw(topo, 4, 64001);

  std::printf("  %-34s %14s %14s\n", "", "ICW=16", "ICW=4 (bug)");
  std::printf("  %-34s %12.0fms %12.0fms\n", "256KB session finish P50",
              healthy.session_p50_ms, regressed.session_p50_ms);
  std::printf("  %-34s %14.1f %14.1f\n", "data round trips per session",
              healthy.mean_round_trips, regressed.mean_round_trips);
  std::printf("  %-34s %12.0fus %12.0fus\n", "Pingmesh probe RTT P50",
              healthy.probe_p50_us, regressed.probe_p50_us);
  std::printf("  %-34s %12.0fus %12.0fus\n", "Pingmesh probe RTT P99",
              healthy.probe_p99_us, regressed.probe_p99_us);
  std::printf("  %-34s %14s %14s\n", "Pingmesh drop rate",
              format_rate(healthy.drop_rate).c_str(),
              format_rate(regressed.drop_rate).c_str());

  double app_impact_ms = regressed.session_p50_ms - healthy.session_p50_ms;
  double probe_shift =
      std::abs(regressed.probe_p50_us - healthy.probe_p50_us) / healthy.probe_p50_us;
  bench::compare_row("application slowdown", "several hundred ms",
                     std::to_string(static_cast<int>(app_impact_ms)) + "ms");
  bench::compare_row("Pingmesh P50 shift (blind spot)", "~0",
                     bench::pct(probe_shift));

  bench::heading("2. tier vs switch localization");
  netsim::SimNetwork net(topo, 777);
  SwitchId bad = topo.dcs()[0].spines[1];
  net.faults().add_silent_random_drop(bad, 0.02);
  controller::GeneratorConfig gcfg;
  gcfg.enable_inter_dc = false;
  controller::PinglistGenerator gen(topo, gcfg);
  core::FleetProbeDriver driver(topo, net, gen);
  std::vector<agent::LatencyRecord> records;
  driver.run_dense(0, 25, seconds(10), [&](const core::FleetProbe& p) {
    records.push_back(bench::to_record(topo, p));
  });
  analysis::SilentDropLocalizer localizer;
  auto report = localizer.localize(records, topo, net, 0);
  std::size_t tier_candidates = topo.dcs()[0].spines.size();
  std::printf("  passive Pingmesh data narrows to: tier=%s (%zu candidate switches)\n",
              analysis::suspect_tier_name(report.tier), tier_candidates);
  std::printf("  + TCP traceroute narrows to:      %s (1 switch)\n",
              report.culprit.valid() ? topo.sw(report.culprit).name.c_str() : "(none)");

  bench::heading("shape checks");
  bool app_hurts = app_impact_ms > 200;
  bool pingmesh_blind = probe_shift < 0.05 &&
                        std::abs(regressed.drop_rate - healthy.drop_rate) < 5e-4;
  bool traceroute_needed = report.tier == analysis::SuspectTier::kSpine &&
                           report.culprit == bad;
  bench::note(std::string("sessions slow by 100s of ms:   ") + (app_hurts ? "yes" : "NO"));
  bench::note(std::string("Pingmesh metrics unchanged:    ") + (pingmesh_blind ? "yes" : "NO"));
  bench::note(std::string("traceroute completes the hunt: ") +
              (traceroute_needed ? "yes" : "NO"));
  return (app_hurts && pingmesh_blind && traceroute_needed) ? 0 : 1;
}

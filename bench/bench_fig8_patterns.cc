// Figure 8 reproduction: network latency patterns through visualization.
//
//   (a) normal          — all green;
//   (b) podset down     — white cross (power loss of a whole podset);
//   (c) podset failure  — red cross (network issue inside the podset);
//   (d) spine failure   — red with green squares on the diagonal
//                         (intra-podset fine, cross-podset out of SLA).
//
// Each scenario: inject the fault, probe the fleet, aggregate pod-pair
// stats through the 10-minute SCOPE job, render the heatmap, and run the
// pattern classifier. PPM images are written next to the binary.
#include <cstdio>
#include <fstream>

#include "analysis/heatmap.h"
#include "bench_util.h"
#include "controller/generator.h"
#include "core/scenarios.h"
#include "dsa/jobs.h"
#include "netsim/simnet.h"

namespace {

using namespace pingmesh;

struct Scenario {
  const char* name;
  const char* paper_pattern;
  analysis::LatencyPattern expected;
  std::function<void(netsim::SimNetwork&, const topo::Topology&)> inject;
};

analysis::PatternResult run_scenario(const Scenario& scenario, int index) {
  topo::Topology topo = topo::Topology::build({topo::small_dc_spec("DC1", "US West")});
  netsim::SimNetwork net(topo, 808 + static_cast<std::uint64_t>(index));
  scenario.inject(net, topo);

  controller::GeneratorConfig gcfg;
  gcfg.enable_inter_dc = false;
  gcfg.payload_every_kth = 0;
  controller::PinglistGenerator gen(topo, gcfg);
  core::FleetProbeDriver driver(topo, net, gen);

  // One aggregation window of probing, through the DSA job into pod-pair rows.
  std::vector<agent::LatencyRecord> records;
  driver.run_dense(0, 60, seconds(10), [&](const core::FleetProbe& p) {
    records.push_back(bench::to_record(topo, p));
  });
  dsa::CosmosStore store;
  dsa::CosmosStream& stream = store.stream(dsa::kLatencyStream);
  stream.append(agent::encode_batch(records), records.size(), 0, minutes(10), minutes(10));
  dsa::Database db;
  dsa::JobContext ctx{&topo, nullptr, &db};
  dsa::run_pod_pair_job(stream, ctx, 0, minutes(10));

  analysis::Heatmap map(topo, DcId{0});
  map.load(db.latest_pod_pair_window());
  std::printf("\n  --- %s (paper: %s) ---\n", scenario.name, scenario.paper_pattern);
  // Indent the ascii art.
  std::string art = map.ascii();
  std::string line;
  for (char c : art) {
    if (c == '\n') {
      std::printf("    %s\n", line.c_str());
      line.clear();
    } else {
      line += c;
    }
  }
  std::string ppm_path = std::string("fig8_") + std::to_string(index) + ".ppm";
  std::ofstream(ppm_path, std::ios::binary) << map.to_ppm(8);
  analysis::PatternResult result = analysis::classify_pattern(map);
  std::printf("    classified: %s (green %.0f%%, red %.0f%%, white %.0f%%) -> %s\n",
              analysis::latency_pattern_name(result.pattern),
              result.green_fraction * 100, result.red_fraction * 100,
              result.white_fraction * 100, ppm_path.c_str());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  pingmesh::bench::parse_args(argc, argv);
  bench::heading("Figure 8: network latency patterns through visualization");

  std::vector<Scenario> scenarios = {
      {"(a) normal", "all green", analysis::LatencyPattern::kNormal,
       [](netsim::SimNetwork&, const topo::Topology&) {}},
      {"(b) podset down", "white cross", analysis::LatencyPattern::kPodsetDown,
       [](netsim::SimNetwork& net, const topo::Topology& topo) {
         net.faults().add_podset_down(topo.podsets()[0].id);
       }},
      {"(c) podset failure", "red cross", analysis::LatencyPattern::kPodsetFailure,
       [](netsim::SimNetwork& net, const topo::Topology& topo) {
         // A leaf-layer problem inside podset 1: heavy queueing + drops on
         // both of its leaves hits all traffic from and to the podset.
         for (SwitchId leaf : topo.podsets()[1].leaves) {
           net.faults().add_congestion(leaf, /*queue_scale=*/120.0, /*drop_prob=*/0.003);
         }
         // Its ToR uplinks queue too (the podset is saturated internally).
         for (PodId pod : topo.podsets()[1].pods) {
           net.faults().add_congestion(topo.pod(pod).tor, 120.0, 0.003);
         }
       }},
      {"(d) spine failure", "red, green diagonal squares",
       analysis::LatencyPattern::kSpineFailure,
       [](netsim::SimNetwork& net, const topo::Topology& topo) {
         for (SwitchId spine : topo.dcs()[0].spines) {
           net.faults().add_congestion(spine, /*queue_scale=*/150.0, /*drop_prob=*/0.002);
         }
       }},
  };

  bool all_match = true;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    analysis::PatternResult result = run_scenario(scenarios[i], static_cast<int>(i));
    if (result.pattern != scenarios[i].expected) {
      all_match = false;
      std::printf("    !! expected %s\n",
                  analysis::latency_pattern_name(scenarios[i].expected));
    }
  }

  bench::heading("shape checks");
  bench::note(std::string("all four patterns classified as in the paper: ") +
              (all_match ? "yes" : "NO"));
  return all_match ? 0 : 1;
}

// bench_soak — the closed-loop self-healing soak gate (DESIGN.md §14).
//
// Runs the seeded soak (heal/soak.h) on the fixed CI seed at 1 and 4 worker
// threads, pins the two reports byte-identical, and emits the loop metrics
// check_perf.py gates:
//
//   soak_mttd_blackhole_s      mean inject -> first streaming trigger
//   soak_mttr_blackhole_s      mean inject -> all alerts closed post-repair
//   soak_false_reloads         reloads on never-black-holed switches (== 0)
//   soak_unrepaired_blackholes injected black-holes missed by the loop (== 0)
//   soak_report_identical      1-vs-4-worker soak report byte equality (== 1)
//
// Flags: --seed N --episodes N --minutes N --json PATH
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "heal/soak.h"

int main(int argc, char** argv) {
  using namespace pingmesh;
  bench::parse_args(argc, argv);

  heal::SoakConfig cfg;
  cfg.seed = 7;
  cfg.episodes = 3;
  cfg.episode_duration = minutes(30);
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--seed" && i + 1 < argc) cfg.seed = std::strtoull(argv[++i], nullptr, 10);
    else if (a == "--episodes" && i + 1 < argc) cfg.episodes = std::atoi(argv[++i]);
    else if (a == "--minutes" && i + 1 < argc) cfg.episode_duration = minutes(std::atoi(argv[++i]));
  }

  bench::heading("Self-healing soak: detection -> blame -> repair (paper §5.1)");

  cfg.worker_threads = 1;
  heal::SoakReport serial = heal::run_soak(cfg);
  cfg.worker_threads = 4;
  heal::SoakReport sharded = heal::run_soak(cfg);

  const bool identical = serial.to_json() == sharded.to_json();
  std::printf("%s", serial.to_text().c_str());
  bench::note(std::string("1-vs-4-worker soak report: ") +
              (identical ? "byte-identical" : "MISMATCH"));
  if (!identical) {
    std::printf("--- serial ---\n%s--- sharded ---\n%s", serial.to_json().c_str(),
                sharded.to_json().c_str());
  }

  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1fs", serial.mttd_seconds());
  bench::compare_row("MTTD (blackhole)", "< 2 sim-min", buf);
  std::snprintf(buf, sizeof(buf), "%.1fs", serial.mttr_seconds());
  bench::compare_row("MTTR (blackhole)", "minutes", buf);
  bench::compare_row("false reloads vs daily budget", "0",
                     std::to_string(serial.false_reloads));

  bench::json_metric("soak_mttd_blackhole_s", serial.mttd_seconds(), "s");
  bench::json_metric("soak_mttr_blackhole_s", serial.mttr_seconds(), "s");
  bench::json_metric("soak_false_reloads", serial.false_reloads, "count");
  bench::json_metric("soak_unrepaired_blackholes", serial.unrepaired_blackholes, "count");
  bench::json_metric("soak_report_identical", identical ? 1 : 0, "bool");
  bench::json_metric("soak_incidents", serial.incidents, "count");
  bench::json_metric("soak_recovered", serial.recovered, "count");
  bench::json_metric("soak_invariants_ok", serial.invariants_ok ? 1 : 0, "bool");

  const bool ok = identical && serial.invariants_ok && serial.false_reloads == 0 &&
                  serial.unrepaired_blackholes == 0;
  return ok ? 0 : 1;
}

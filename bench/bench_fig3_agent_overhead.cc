// Figure 3 reproduction: CPU and memory overhead of the Pingmesh Agent.
//
// Paper setup: an agent actively probing ~2500 servers on a 16-core Xeon
// E5-2450 with 128 GB RAM; measured average CPU 0.26%, average memory
// footprint < 45 MB.
//
// This harness runs the real epoll-based probe library over loopback: one
// process hosts both the prober and a set of responders (the agent acts as
// client and server anyway). 2500 logical peers at the paper's 10-second
// minimum per-peer interval means ~250 probes/s; we pace exactly that and
// sample getrusage CPU time and VmRSS. Our numbers include the responder
// side, so they upper-bound the agent alone.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/reactor.h"
#include "net/tcp_probe.h"

namespace {

using namespace pingmesh;
using namespace std::chrono_literals;

double process_cpu_seconds() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) + static_cast<double>(t.tv_usec) / 1e6;
  };
  return tv(usage.ru_utime) + tv(usage.ru_stime);
}

double rss_mb() {
  std::ifstream statm("/proc/self/statm");
  long total = 0, resident = 0;
  statm >> total >> resident;
  return static_cast<double>(resident) * static_cast<double>(sysconf(_SC_PAGESIZE)) /
         (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  pingmesh::bench::parse_args(argc, argv);
  bench::heading("Figure 3: Pingmesh Agent CPU and memory overhead (real sockets)");

  net::Reactor reactor;
  // A pool of responders standing in for the ~2500 peers (loopback has one
  // host; peers differ by port).
  constexpr int kResponders = 32;
  std::vector<std::unique_ptr<net::TcpProbeServer>> responders;
  std::vector<net::SockAddr> targets;
  for (int i = 0; i < kResponders; ++i) {
    responders.push_back(
        std::make_unique<net::TcpProbeServer>(reactor, net::SockAddr::loopback(0)));
    targets.push_back(net::SockAddr::loopback(responders.back()->port()));
  }
  net::TcpProber prober(reactor);

  constexpr int kPeers = 2500;
  constexpr double kProbesPerSecond = kPeers / 10.0;  // 10s min per-peer interval
  constexpr auto kRunTime = 8s;
  constexpr auto kTickEvery = 20ms;
  const int probes_per_tick =
      static_cast<int>(kProbesPerSecond * 0.02 + 0.5);  // 5 per 20ms tick

  std::uint64_t done = 0, ok = 0, launched = 0;
  std::uint64_t peer_cursor = 0;
  std::function<void()> tick = [&] {
    for (int i = 0; i < probes_per_tick; ++i) {
      const net::SockAddr& dst = targets[peer_cursor++ % targets.size()];
      int payload = (peer_cursor % 4 == 0) ? 1000 : 0;  // payload every 4th probe
      prober.probe(dst, payload, 2000ms, [&](const net::TcpProbeResult& r) {
        ++done;
        if (r.connected) ++ok;
      });
      ++launched;
    }
    reactor.add_timer_after(kTickEvery, tick);
  };

  double cpu_before = process_cpu_seconds();
  auto wall_before = std::chrono::steady_clock::now();
  reactor.add_timer_after(0ms, tick);

  RunningStat rss;
  auto deadline = wall_before + kRunTime;
  while (std::chrono::steady_clock::now() < deadline) {
    reactor.run_once(10ms);
    rss.record(rss_mb());
  }
  // Drain in-flight probes.
  reactor.run_until([&] { return done == launched; },
                    std::chrono::steady_clock::now() + 3s);

  double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              wall_before)
                    .count();
  double cpu = process_cpu_seconds() - cpu_before;
  double cpu_pct = 100.0 * cpu / wall;
  // The paper's 0.26% is of a 16-core box (i.e. ~4.2% of one core). Report
  // both views.
  double cpu_pct_16core = cpu_pct / 16.0;

  std::printf("  probes launched: %lu, completed: %lu, connect-ok: %lu\n",
              static_cast<unsigned long>(launched), static_cast<unsigned long>(done),
              static_cast<unsigned long>(ok));
  std::printf("  probe rate: %.0f/s over %.1fs (paper: ~2500 peers / 10s interval)\n",
              static_cast<double>(launched) / wall, wall);
  bench::compare_row("CPU (of one core, incl. responders)", "~4.2%",
                     bench::pct(cpu_pct / 100.0));
  bench::compare_row("CPU (normalized to a 16-core host)", "0.26%",
                     bench::pct(cpu_pct_16core / 100.0));
  char mem[64];
  std::snprintf(mem, sizeof(mem), "%.1fMB avg / %.1fMB max", rss.mean(), rss.max());
  bench::compare_row("memory footprint", "<45MB", mem);

  bench::heading("shape checks");
  bool cpu_ok = cpu_pct < 25.0;  // well under one core at paper probe rate
  bool mem_ok = rss.max() < 45.0;
  bool delivery_ok = done > 0 && ok > done * 95 / 100;
  bench::note(std::string("CPU small at paper probe rate: ") + (cpu_ok ? "yes" : "NO"));
  bench::note(std::string("memory under the paper's 45MB:  ") + (mem_ok ? "yes" : "NO"));
  bench::note(std::string("probes overwhelmingly succeed:  ") + (delivery_ok ? "yes" : "NO"));
  return (cpu_ok && mem_ok && delivery_ok) ? 0 : 1;
}

// §6.2 "Inter-DC Pingmesh" reproduction.
//
// "Pingmesh originally worked for intra-DC. However, extending it to cover
// Inter-DC is easy. We extended the Pingmesh Controller's pinglist
// generation algorithm so as to select a set of servers from every data
// center and let them carry out Inter-DC ping and the job was done. There
// is no single line of code or configuration change of the Pingmesh Agent."
//
// This harness runs the level-3 mesh across five globally distributed DCs
// over a WAN with per-pair propagation delays, and shows:
//  - the DC-level complete graph is realized by a few selected servers per
//    podset (coverage table);
//  - inter-DC RTTs reflect WAN propagation (each pair's P50 ~ 2x one-way
//    propagation), cleanly separated from intra-DC latencies;
//  - a WAN degradation between one DC pair is visible in exactly that
//    pair's cell and nowhere else.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/stats.h"
#include "controller/generator.h"
#include "core/scenarios.h"
#include "netsim/simnet.h"

namespace {

using namespace pingmesh;

struct PairKey {
  std::uint32_t a, b;
  auto operator<=>(const PairKey&) const = default;
};

}  // namespace

int main(int argc, char** argv) {
  pingmesh::bench::parse_args(argc, argv);
  bench::heading("Inter-DC Pingmesh (paper section 6.2)");

  topo::Topology topo = topo::Topology::build(core::five_dc_specs());
  netsim::SimNetwork net(topo, 62);
  core::apply_table1_profiles(net);

  // A plausible geo layout: one-way propagation per DC pair (ms).
  const double kOneWayMs[5][5] = {
      {0, 18, 34, 74, 52},   // US West
      {18, 0, 16, 58, 70},   // US Central
      {34, 16, 0, 42, 86},   // US East
      {74, 58, 42, 0, 92},   // Europe
      {52, 70, 86, 92, 0},   // Asia
  };
  for (std::uint32_t i = 0; i < 5; ++i) {
    for (std::uint32_t j = i + 1; j < 5; ++j) {
      netsim::WanProfile wan;
      wan.propagation_ms_oneway = kOneWayMs[i][j];
      net.set_wan_profile(DcId{i}, DcId{j}, wan);
    }
  }
  // Degrade the US West <-> Asia path: long-haul fiber trouble.
  net.faults();  // (documented below: injected as extra WAN-edge drop via border congestion)
  for (SwitchId border : topo.dcs()[0].borders) {
    net.faults().add_congestion(border, 40.0, 0.004);
  }

  controller::GeneratorConfig gcfg;
  gcfg.enable_inter_dc = true;
  gcfg.interdc_servers_per_podset = 2;
  gcfg.interdc_peers_per_dc = 4;
  gcfg.inter_dc_interval = minutes(1);
  gcfg.payload_every_kth = 0;
  controller::PinglistGenerator gen(topo, gcfg);

  bench::heading("level-3 participant selection");
  for (const topo::DataCenter& dc : topo.dcs()) {
    auto participants = gen.interdc_participants(dc.id);
    std::printf("  %-5s %zu selected servers (%zu podsets x 2)\n", dc.name.c_str(),
                participants.size(), dc.podsets.size());
  }

  // Probe: only the inter-DC targets matter here.
  core::FleetProbeDriver driver(topo, net, gen);
  std::map<PairKey, LatencyHistogram> pair_hist;
  std::map<PairKey, std::uint64_t> pair_sig;
  std::map<PairKey, std::uint64_t> pair_ok;
  driver.run_dense(0, 40, minutes(1), [&](const core::FleetProbe& p) {
    if (!p.dst.valid()) return;
    const topo::Server& src = topo.server(p.src);
    const topo::Server& dst = topo.server(p.dst);
    if (src.dc == dst.dc) return;
    PairKey key{std::min(src.dc.value, dst.dc.value), std::max(src.dc.value, dst.dc.value)};
    if (!p.outcome.success) return;
    ++pair_ok[key];
    if (p.outcome.syn_transmissions > 1) {
      ++pair_sig[key];
    } else {
      pair_hist.try_emplace(key).first->second.record(p.outcome.rtt);
    }
  });

  bench::heading("inter-DC RTT matrix (P50 measured vs 2x propagation)");
  std::printf("  %-14s %12s %14s %12s %12s\n", "pair", "P50", "expected~", "P99",
              "drop rate");
  bool rtts_track_wan = true;
  double degraded_pair_drops = 0, clean_pair_drops_max = 0;
  for (auto& [key, hist] : pair_hist) {
    double expected_ms = 2 * kOneWayMs[key.a][key.b];
    double p50_ms = to_millis(hist.p50());
    double drop = pair_ok[key]
                      ? static_cast<double>(pair_sig[key]) / static_cast<double>(pair_ok[key])
                      : 0;
    std::printf("  DC%u <-> DC%-5u %10.1fms %12.0fms %10.1fms %12s\n", key.a + 1,
                key.b + 1, p50_ms, expected_ms, to_millis(hist.p99()),
                format_rate(drop).c_str());
    if (p50_ms < expected_ms * 0.9 || p50_ms > expected_ms * 1.5) rtts_track_wan = false;
    if (key.a == 0) {
      degraded_pair_drops = std::max(degraded_pair_drops, drop);
    } else {
      clean_pair_drops_max = std::max(clean_pair_drops_max, drop);
    }
  }

  bench::heading("summary vs paper");
  bench::compare_row("agent changes needed for inter-DC", "none",
                     "none (same FleetProbeDriver, same agent logic)");
  bench::compare_row("RTTs dominated by WAN propagation", "yes",
                     rtts_track_wan ? "yes" : "NO");
  char buf[96];
  std::snprintf(buf, sizeof(buf), "DC1 pairs %s vs others %s",
                format_rate(degraded_pair_drops).c_str(),
                format_rate(clean_pair_drops_max).c_str());
  bench::compare_row("degraded WAN edge visible per pair", "localized", buf);

  bench::heading("shape checks");
  bool coverage = pair_hist.size() == 10;  // complete graph on 5 DCs
  bool localized = degraded_pair_drops > 10 * std::max(clean_pair_drops_max, 1e-5);
  bench::note(std::string("all 10 DC pairs measured:        ") + (coverage ? "yes" : "NO"));
  bench::note(std::string("RTT matrix tracks geography:     ") +
              (rtts_track_wan ? "yes" : "NO"));
  bench::note(std::string("WAN fault localized to its DC:   ") + (localized ? "yes" : "NO"));
  return (coverage && rtts_track_wan && localized) ? 0 : 1;
}

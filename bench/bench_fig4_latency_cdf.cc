// Figure 4 reproduction: network latency distributions of two data centers.
//
//   (a) inter-pod latency CDF of DC1 (throughput-intensive) vs DC2
//       (latency-sensitive Search);
//   (b) the high-percentile tail — paper: P99.9 = 23.35 ms / 11.07 ms,
//       P99.99 = 1397.63 ms / 105.84 ms;
//   (c) intra-pod vs inter-pod in DC1 — paper: P50 216 us vs 268 us,
//       P99 1.26 ms vs 1.34 ms;
//   (d) with vs without payload in DC1 — paper: P50 268 -> 326 us,
//       P99 1.34 -> 2.43 ms.
//
// Shape targets, not absolute matches: DC1 and DC2 are comparable below
// P90 but diverge hard at the extreme tail (busy non-realtime hosts stall);
// inter-pod sits tens of microseconds above intra-pod; payload pings cost a
// bit at P50 and more at P99.
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "controller/generator.h"
#include "core/scenarios.h"
#include "netsim/simnet.h"

namespace {

using namespace pingmesh;

struct DcHists {
  LatencyHistogram intra_pod;
  LatencyHistogram inter_pod;
  LatencyHistogram payload;           // payload echo RTT (inter-pod)
  LatencyHistogram inter_no_payload;  // connect RTT of payload-free probes
};

}  // namespace

int main(int argc, char** argv) {
  pingmesh::bench::parse_args(argc, argv);
  bench::heading("Figure 4: intra-DC latency distributions (DC1 vs DC2)");

  topo::Topology topo = topo::Topology::build(core::two_dc_specs(/*medium=*/true));
  netsim::SimNetwork net(topo, 20260704);
  core::apply_dc1_dc2_profiles(net);

  controller::GeneratorConfig gcfg;
  gcfg.enable_inter_dc = false;  // Figure 4 is intra-DC
  gcfg.payload_every_kth = 4;
  gcfg.payload_bytes = 1000;  // paper: 800-1200 bytes
  controller::PinglistGenerator gen(topo, gcfg);
  core::FleetProbeDriver driver(topo, net, gen);

  std::vector<DcHists> dc(2);
  const int kRounds = 40;
  driver.run_dense(0, kRounds, minutes(1), [&](const core::FleetProbe& p) {
    if (!p.outcome.success || !p.dst.valid()) return;
    const topo::Server& src = topo.server(p.src);
    const topo::Server& dst = topo.server(p.dst);
    DcHists& h = dc[src.dc.value];
    if (src.pod == dst.pod) {
      h.intra_pod.record(p.outcome.rtt);
    } else {
      h.inter_pod.record(p.outcome.rtt);
      if (p.target->kind == controller::ProbeKind::kTcpPayload) {
        if (p.outcome.payload_success) h.payload.record(p.outcome.payload_rtt);
      } else {
        h.inter_no_payload.record(p.outcome.rtt);
      }
    }
  });

  std::printf("  probes fired: %lu (%d dense rounds, 2 medium DCs)\n",
              static_cast<unsigned long>(driver.probes_fired()), kRounds);

  // ---- (a) inter-pod CDF ---------------------------------------------------
  bench::heading("(a) inter-pod latency CDF");
  std::printf("  %-10s %14s %14s\n", "quantile", "DC1(US West)", "DC2(US Central)");
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    std::printf("  P%-9.4g %14s %14s\n", q * 100,
                format_latency_ns(dc[0].inter_pod.quantile(q)).c_str(),
                format_latency_ns(dc[1].inter_pod.quantile(q)).c_str());
  }
  double p90_ratio = static_cast<double>(dc[0].inter_pod.quantile(0.9)) /
                     static_cast<double>(dc[1].inter_pod.quantile(0.9));
  bench::compare_row("P90 ratio DC1/DC2 (comparable below P90)", "~1x",
                     std::to_string(p90_ratio).substr(0, 4) + "x");

  // ---- (b) the tail ---------------------------------------------------------
  bench::heading("(b) inter-pod latency at high percentile");
  bench::compare_row("DC1 P99.9", "23.35ms",
                     format_latency_ns(dc[0].inter_pod.p999()));
  bench::compare_row("DC2 P99.9", "11.07ms",
                     format_latency_ns(dc[1].inter_pod.p999()));
  bench::compare_row("DC1 P99.99", "1397.63ms",
                     format_latency_ns(dc[0].inter_pod.p9999()));
  bench::compare_row("DC2 P99.99", "105.84ms",
                     format_latency_ns(dc[1].inter_pod.p9999()));
  double tail_ratio = static_cast<double>(dc[0].inter_pod.p9999()) /
                      static_cast<double>(dc[1].inter_pod.p9999());
  bench::compare_row("P99.99 ratio DC1/DC2 (who wins)", "13.2x",
                     std::to_string(tail_ratio).substr(0, 5) + "x");

  // ---- (c) intra- vs inter-pod, DC1 -----------------------------------------
  bench::heading("(c) intra-pod vs inter-pod (DC1)");
  bench::compare_row("intra-pod P50", "216us", format_latency_ns(dc[0].intra_pod.p50()));
  bench::compare_row("inter-pod P50", "268us", format_latency_ns(dc[0].inter_pod.p50()));
  bench::compare_row("P50 delta (queuing, tens of us)", "52us",
                     format_latency_ns(dc[0].inter_pod.p50() - dc[0].intra_pod.p50()));
  bench::compare_row("intra-pod P99", "1.26ms", format_latency_ns(dc[0].intra_pod.p99()));
  bench::compare_row("inter-pod P99", "1.34ms", format_latency_ns(dc[0].inter_pod.p99()));

  // ---- (d) with vs without payload, DC1 --------------------------------------
  bench::heading("(d) latency with vs without payload (DC1, inter-pod)");
  bench::compare_row("no payload P50", "268us",
                     format_latency_ns(dc[0].inter_no_payload.p50()));
  bench::compare_row("payload P50", "326us", format_latency_ns(dc[0].payload.p50()));
  bench::compare_row("no payload P99", "1.34ms",
                     format_latency_ns(dc[0].inter_no_payload.p99()));
  bench::compare_row("payload P99", "2.43ms", format_latency_ns(dc[0].payload.p99()));

  // ---- shape assertions -------------------------------------------------------
  bench::heading("shape checks");
  bool tail_diverges = dc[0].inter_pod.p9999() > 3 * dc[1].inter_pod.p9999();
  bool inter_above_intra = dc[0].inter_pod.p50() > dc[0].intra_pod.p50();
  bool payload_costs = dc[0].payload.p50() > dc[0].inter_no_payload.p50() &&
                       dc[0].payload.p99() > dc[0].inter_no_payload.p99();
  bench::note(std::string("DC1 tail >> DC2 tail at P99.99: ") +
              (tail_diverges ? "yes" : "NO (shape mismatch)"));
  bench::note(std::string("inter-pod > intra-pod at P50:   ") +
              (inter_above_intra ? "yes" : "NO (shape mismatch)"));
  bench::note(std::string("payload > no-payload at P50/P99: ") +
              (payload_costs ? "yes" : "NO (shape mismatch)"));
  return (tail_diverges && inter_above_intra && payload_costs) ? 0 : 1;
}

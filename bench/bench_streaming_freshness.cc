// Detection-latency comparison of the three data paths (DESIGN.md §8):
//
//   streaming  — upload-time tap -> sliding windows -> online detector
//   PA         — 5-minute Perfcounter Aggregator fast path (§3.5)
//   batch      — 10-min SCOPE pod-pair job behind the Cosmos ingestion
//                delay (paper end-to-end freshness "around 20 minutes")
//
// Two injected faults, one per failure shape:
//   1. full ToR blackhole (TCAM corruption): deterministic SYN loss ->
//      failures, no 3s/9s signatures. The PA path is structurally blind to
//      it (its estimator counts signatures over successes); only the
//      streaming silent-pair rule and the batch failure counters see it.
//   2. spine silent random drop: lost SYNs retransmit -> 3s signatures ->
//      all three paths detect, at their respective cadences.
//
// Detection latency = fault start -> first alert (streaming/PA) or -> the
// instant the first breaching pod-pair row becomes available to SCOPE
// (window end + ingestion delay; rows cannot exist earlier by construction).
//
// Exit code is 0 iff the blackhole scenario meets the headline claim:
// streaming under one simulated minute, batch at ten minutes or more.
#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>

#include "bench_util.h"
#include "core/scenarios.h"
#include "core/simulation.h"
#include "dsa/database.h"
#include "netsim/fault.h"
#include "topology/topology.h"

namespace {

using namespace pingmesh;

struct Detection {
  std::optional<SimTime> streaming;
  std::optional<SimTime> pa;
  std::optional<SimTime> batch;
};

std::string fmt(std::optional<SimTime> d) {
  if (!d) return "never";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f s", to_seconds(*d));
  return buf;
}

double metric(std::optional<SimTime> d) { return d ? to_seconds(*d) : -1.0; }

/// Latency from t0 to the first alert after t0 whose rule starts with
/// `prefix` (alerts opening at exactly t0 reflect pre-fault state).
std::optional<SimTime> first_alert(const dsa::Database& db, SimTime t0,
                                   const std::string& prefix) {
  std::optional<SimTime> best;
  for (const dsa::AlertRow& a : db.alerts) {
    if (a.time <= t0 || a.rule.rfind(prefix, 0) != 0) continue;
    if (!best || a.time - t0 < *best) best = a.time - t0;
  }
  return best;
}

/// Earliest availability of a breaching batch row covering the fault: the
/// pod-pair window must close AND clear the Cosmos ingestion delay before
/// SCOPE can scan it.
template <typename Breach>
std::optional<SimTime> first_batch_row(const dsa::Database& db, SimTime t0,
                                       SimTime ingestion_delay, Breach breach) {
  std::optional<SimTime> best;
  for (const dsa::PodPairStatRow& row : db.pod_pair_stats) {
    if (row.window_end <= t0 || !breach(row)) continue;
    SimTime avail = row.window_end + ingestion_delay - t0;
    if (!best || avail < *best) best = avail;
  }
  return best;
}

core::SimulationConfig scenario_config(std::uint64_t seed) {
  core::SimulationConfig cfg = core::streaming_test_config(seed);
  // The paper's production ingestion delay (§3.3 gives batch end-to-end
  // freshness of ~20 min for a 10-min job); the test config shortens it.
  cfg.ingestion_delay = minutes(10);
  return cfg;
}

Detection run_blackhole() {
  core::SimulationConfig cfg = scenario_config(21);
  core::PingmeshSimulation sim(cfg);
  sim.run_for(minutes(40));
  SimTime t0 = sim.now();
  SwitchId tor = sim.topology().pod(PodId{0}).tor;
  sim.faults().add_blackhole(tor, netsim::BlackholeMode::kSrcDstPair, 1.0, t0);
  sim.run_for(minutes(40));

  Detection d;
  d.streaming = first_alert(sim.db(), t0, "stream:");
  d.pa = first_alert(sim.db(), t0, "pa:");
  d.batch = first_batch_row(sim.db(), t0, cfg.ingestion_delay,
                            [](const dsa::PodPairStatRow& r) {
                              return r.probes > 0 && r.failures > 0 &&
                                     static_cast<double>(r.failures) >
                                         0.25 * static_cast<double>(r.probes);
                            });
  return d;
}

Detection run_silent_drops() {
  core::SimulationConfig cfg = scenario_config(22);
  core::PingmeshSimulation sim(cfg);
  sim.run_for(minutes(40));
  SimTime t0 = sim.now();
  SwitchId spine = sim.topology().dc(DcId{0}).spines[0];
  sim.faults().add_silent_random_drop(spine, 0.15, t0);
  sim.run_for(minutes(40));

  Detection d;
  d.streaming = first_alert(sim.db(), t0, "stream:");
  d.pa = first_alert(sim.db(), t0, "pa:");
  d.batch = first_batch_row(sim.db(), t0, cfg.ingestion_delay,
                            [](const dsa::PodPairStatRow& r) {
                              return r.drop_signatures >= 3 && r.drop_rate() > 1e-3;
                            });
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);

  bench::heading("Detection freshness: streaming vs PA (5 min) vs SCOPE batch (10 min)");
  bench::note("fault injected after 40 min warm-up; latency = fault start -> first");
  bench::note("alert (streaming/PA) or first breaching row available to SCOPE (batch)");

  Detection bh = run_blackhole();
  bench::heading("Scenario 1: full ToR blackhole (failures, no SYN-loss signatures)");
  bench::compare_row("streaming silent-pair detection", "< 1 min goal", fmt(bh.streaming));
  bench::compare_row("PA 5-min path", "blind (no signatures)", fmt(bh.pa));
  bench::compare_row("batch pod-pair path", ">= 10 min", fmt(bh.batch));
  bench::json_metric("blackhole_streaming_detection_s", metric(bh.streaming), "s");
  bench::json_metric("blackhole_pa_detection_s", metric(bh.pa), "s");
  bench::json_metric("blackhole_batch_detection_s", metric(bh.batch), "s");

  Detection sd = run_silent_drops();
  bench::heading("Scenario 2: spine silent random drops (3s SYN-loss signatures)");
  bench::compare_row("streaming drop-spike detection", "< 1 min goal", fmt(sd.streaming));
  bench::compare_row("PA 5-min path", "<= 2 periods (10 min)", fmt(sd.pa));
  bench::compare_row("batch pod-pair path", ">= 10 min", fmt(sd.batch));
  bench::json_metric("silent_drop_streaming_detection_s", metric(sd.streaming), "s");
  bench::json_metric("silent_drop_pa_detection_s", metric(sd.pa), "s");
  bench::json_metric("silent_drop_batch_detection_s", metric(sd.batch), "s");

  if (bh.streaming && bh.batch) {
    bench::json_metric("blackhole_freshness_ratio",
                       to_seconds(*bh.batch) / to_seconds(*bh.streaming), "x");
  }

  bool ok = bh.streaming && to_seconds(*bh.streaming) < 60.0 && bh.batch &&
            to_seconds(*bh.batch) >= 600.0;
  bench::heading(ok ? "PASS: sub-minute streaming detection, >= 10 min batch"
                    : "FAIL: detection-latency targets missed");
  return ok ? 0 : 1;
}

// Figure 6 reproduction: ToR black-hole detection and repair over time.
//
// Paper: "Figure 6 shows the number of ToR switches with black-holes the
// algorithm detected. As we can see from the figure, the number of the
// switches with packet black-holes decreases once algorithm began to run.
// In our algorithm, we limit the algorithm to reload at most 20 switches
// per day. ... after a period of time, the number of switches detected
// dropped to only several per day."
//
// Reproduction: a medium DC starts with a backlog of black-holed ToRs (the
// situation before the detector existed); a couple more develop each day.
// Every day: probe the fleet, run the detection algorithm on the day's
// records, reload candidates within the 20/day budget. The detected count
// must decay from budget-limited down to the daily arrival rate.
#include <cstdio>

#include "analysis/blackhole.h"
#include "autopilot/repair.h"
#include "bench_util.h"
#include "common/rng.h"
#include "controller/generator.h"
#include "core/scenarios.h"
#include "netsim/simnet.h"

int main(int argc, char** argv) {
  pingmesh::bench::parse_args(argc, argv);
  using namespace pingmesh;
  bench::heading("Figure 6: number of ToR switches with packet black-holes detected");

  topo::Topology topo = topo::Topology::build({topo::medium_dc_spec("DC1", "US West")});
  netsim::SimNetwork net(topo, 606);
  Rng rng(606);

  auto seed_blackhole = [&](SwitchId tor, SimTime from) {
    auto mode = rng.chance(0.6) ? netsim::BlackholeMode::kSrcDstPair
                                : netsim::BlackholeMode::kFiveTuple;
    double fraction = rng.uniform(0.04, 0.30);
    net.faults().add_blackhole(tor, mode, fraction, from, netsim::FaultInjector::kForever,
                               rng.next_u64());
  };

  // Backlog: 26 of the 40 ToRs are black-holing when the detector comes
  // online; afterwards ~2 new ones appear per day.
  std::vector<SwitchId> tors = topo.switches_in_dc(DcId{0}, topo::SwitchKind::kTor);
  {
    std::vector<SwitchId> shuffled = tors;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    for (int i = 0; i < 26; ++i) seed_blackhole(shuffled[static_cast<std::size_t>(i)], 0);
  }

  autopilot::RepairService repair(
      autopilot::RepairConfig{.max_reloads_per_day = 20},
      [&](SwitchId sw) { net.faults().clear_blackholes_on(sw); }, nullptr);

  controller::GeneratorConfig gcfg;
  gcfg.enable_inter_dc = false;
  gcfg.payload_every_kth = 0;
  controller::PinglistGenerator gen(topo, gcfg);
  analysis::BlackholeDetector detector;

  const int kDays = 18;
  std::printf("\n  %-5s %10s %10s %12s %12s\n", "day", "detected", "reloaded",
              "escalations", "active(truth)");
  std::vector<int> detected_series;
  for (int day = 0; day < kDays; ++day) {
    SimTime day_start = day * kNanosPerDay;
    // ~2 new black-holes per day after day 0.
    if (day > 0) {
      int arrivals = static_cast<int>(rng.uniform_u32(3));  // 0..2
      for (int a = 0; a < arrivals; ++a) {
        seed_blackhole(tors[rng.uniform_u32(static_cast<std::uint32_t>(tors.size()))],
                       day_start);
      }
    }

    // The day's measurement window.
    core::FleetProbeDriver driver(topo, net, gen);
    std::vector<agent::LatencyRecord> records;
    driver.run_dense(day_start, 6, seconds(10),
                     [&](const core::FleetProbe& p) { records.push_back(bench::to_record(topo, p)); });

    analysis::BlackholeReport report = detector.detect(records, topo);
    int reloaded = 0;
    for (const analysis::TorScore& candidate : report.candidates) {
      if (repair.request_reload(candidate.tor, "pingmesh black-hole score", day_start)) {
        ++reloaded;
      }
    }
    std::size_t active = net.faults().blackholed_switches(day_start + hours(23)).size();
    detected_series.push_back(static_cast<int>(report.candidates.size()));
    std::printf("  %-5d %10zu %10d %12zu %12zu\n", day, report.candidates.size(), reloaded,
                report.escalations.size(), active);
  }

  bench::heading("summary vs paper");
  int first_days = detected_series[0];
  int tail_max = 0;
  for (std::size_t d = detected_series.size() - 5; d < detected_series.size(); ++d) {
    tail_max = std::max(tail_max, detected_series[d]);
  }
  bench::compare_row("day-0 detections (budget-limited)", "~20 (cap)",
                     std::to_string(first_days));
  bench::compare_row("steady state detections/day", "\"only several\"",
                     std::to_string(tail_max) + " (max of last 5 days)");

  bench::heading("shape checks");
  bool starts_high = first_days >= 15;
  bool decays = tail_max <= 6 && tail_max < first_days / 2;
  bench::note(std::string("initial backlog saturates the budget: ") +
              (starts_high ? "yes" : "NO"));
  bench::note(std::string("decays to a few per day:              ") +
              (decays ? "yes" : "NO"));
  return (starts_high && decays) ? 0 : 1;
}

// §3.5 reproduction: the shape of the data storage and analysis pipeline.
//
// Paper claims reproduced here:
//  - 10-min SCOPE jobs are the near-real-time path; data-generated to
//    data-consumed latency is ~20 minutes;
//  - the Autopilot Perfcounter Aggregator path runs on a 5-minute cadence
//    and is independent of Cosmos (higher combined availability);
//  - "All the Pingmesh Agents upload 24 terabytes latency measurement
//    results to Cosmos per day" at ~200 billion probes/day — a per-probe
//    record cost of ~120 bytes; we compare our per-probe upload footprint.
#include <cstdio>

#include "bench_util.h"
#include "core/scenarios.h"
#include "core/simulation.h"

int main(int argc, char** argv) {
  pingmesh::bench::parse_args(argc, argv);
  using namespace pingmesh;
  bench::heading("DSA pipeline shape (paper section 3.5)");

  core::SimulationConfig cfg = core::small_test_config(35);
  cfg.cosmos_retention = hours(12);  // keep everything for the accounting below
  cfg.ingestion_delay = minutes(10);  // the paper's Cosmos ingestion lag
  core::PingmeshSimulation sim(cfg);
  sim.run_for(hours(4));

  const dsa::CosmosStream* stream = sim.cosmos().find(dsa::kLatencyStream);
  std::printf("  simulated: %.0f hours, %zu servers, %lu probes\n",
              to_seconds(sim.now()) / 3600.0, sim.topology().server_count(),
              static_cast<unsigned long>(sim.total_probes()));

  bench::heading("job cadences and freshness");
  std::printf("  %-18s %10s %8s %18s\n", "job", "period", "runs", "last e2e delay");
  SimTime ten_min_delay = 0;
  std::uint64_t ten_min_runs = 0;
  for (const auto& job : sim.jobs().stats()) {
    std::printf("  %-18s %9.0fm %8lu %17.1fm\n", job.name.c_str(),
                to_seconds(job.period) / 60.0, static_cast<unsigned long>(job.runs),
                to_seconds(job.last_e2e_delay()) / 60.0);
    if (job.name == "pod-pair-10min") {
      ten_min_delay = job.last_e2e_delay();
      ten_min_runs = job.runs;
    }
  }
  bench::compare_row("10-min job end-to-end freshness", "~20 minutes",
                     std::to_string(static_cast<int>(to_seconds(ten_min_delay) / 60)) +
                         " minutes");

  bench::heading("Perfcounter Aggregator fast path");
  // PA rows arrive every 5 minutes per pod.
  SimTime first_pa = 0, last_pa = 0;
  for (const auto& row : sim.db().pa_counters) {
    if (first_pa == 0 || row.time < first_pa) first_pa = row.time;
    last_pa = std::max(last_pa, row.time);
  }
  std::size_t pods = sim.topology().pods().size();
  double expected_flushes = to_seconds(last_pa - first_pa) / 300.0 + 1;
  bench::compare_row("PA collection cadence", "5 minutes",
                     std::to_string(sim.db().pa_counters.size() / pods) + " flushes in " +
                         std::to_string(static_cast<int>(to_seconds(last_pa) / 60)) + "m");

  bench::heading("upload volume");
  double bytes = static_cast<double>(stream ? stream->total_bytes() : 0);
  double per_probe = sim.total_probes() ? bytes / static_cast<double>(sim.total_probes()) : 0;
  // Paper: 24 TB/day over ~200e9 probes/day = ~120 B/probe.
  char measured[64];
  std::snprintf(measured, sizeof(measured), "%.0f bytes/probe", per_probe);
  bench::compare_row("record upload footprint", "~120 bytes/probe", measured);
  double day_extrapolation = per_probe * 200e9 / 1e12;
  std::printf("  at the paper's 200e9 probes/day this is %.1f TB/day (paper: 24 TB)\n",
              day_extrapolation);

  bench::heading("shape checks");
  bool fresh = ten_min_delay >= minutes(15) && ten_min_delay <= minutes(35);
  bool ran = ten_min_runs >= 10;
  bool pa_flowing =
      sim.db().pa_counters.size() >= pods * 30;  // ~4h/5min = 48 flushes, allow slack
  // Binary columnar extents (DESIGN.md §12.2) bring the footprint well under
  // the paper's ~120 B CSV-era cost; anything below the varint floor (~10 B
  // of dict index + delta ts + rtt + flags) would mean rows are being lost.
  bool footprint_sane = per_probe > 10 && per_probe < 400;
  bench::note(std::string("10-min path ~20min fresh:  ") + (fresh ? "yes" : "NO"));
  bench::note(std::string("jobs ran continuously:     ") + (ran ? "yes" : "NO"));
  bench::note(std::string("PA fast path flowing:      ") + (pa_flowing ? "yes" : "NO"));
  bench::note(std::string("per-probe bytes plausible: ") + (footprint_sane ? "yes" : "NO"));
  (void)expected_flushes;
  return (fresh && ran && pa_flowing && footprint_sane) ? 0 : 1;
}

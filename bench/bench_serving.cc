// Serving-tier load generator (DESIGN.md §13): measures the interactive
// read path end to end.
//
//  1. Build rollups live from a simulated fleet (uploader tap -> RollupStore
//     with shrunken tiers so all three levels seal within the run).
//  2. Closed-loop HTTP load against QueryService over loopback: cold pass
//     (every path distinct -> render + cache fill) then warm pass (repeats
//     -> LRU hits), reporting QPS and per-request P50/P99.
//  3. Conditional-GET pinglist herd against ControllerHttpService: after one
//     warm fetch per agent, every re-poll presents If-None-Match and must
//     come back 304 with zero additional pinglist renders.
//  4. Cross-validation: rollup percentiles vs an exact rescan of the same
//     record stream, which must agree within the sketch's error bound.
//  5. Restart recovery: a PersistentRollupStore WALs + checkpoints the same
//     stream through Cosmos during the run; afterwards a cold store is
//     rebuilt from those streams, timed, and digest-compared against the
//     writer — plus a cross-replica conditional GET (pre-restart ETag must
//     revalidate as 304 on a service over the recovered store).
//
// The perf-smoke gate keys on: serving_query_qps (throughput floor),
// serving_query_p99_us (latency ceiling), serving_herd_renders (== 0),
// serving_rollup_within_bounds (== 1), serving_recovery_ms (ceiling), and
// serving_recovery_digest_match / serving_recovery_cross_replica_304 (== 1).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "agent/counters.h"
#include "bench_util.h"
#include "controller/service.h"
#include "core/scenarios.h"
#include "core/simulation.h"
#include "net/http.h"
#include "net/reactor.h"
#include "net/sockaddr.h"
#include "serve/persist.h"
#include "serve/query_service.h"
#include "serve/rollup.h"

namespace pingmesh {
namespace {

using std::chrono::steady_clock;

/// Ground truth beside the rollups: the same tapped record stream, kept
/// exact (per-pair clean-RTT vectors) for percentile cross-validation.
class ExactTap final : public dsa::RecordTap {
 public:
  explicit ExactTap(const topo::Topology& topo) : topo_(&topo) {}

  void on_records(const agent::RecordColumns& batch, SimTime) override {
    const std::size_t n = batch.size();
    for (std::size_t i = 0; i < n; ++i) {
      auto src = topo_->find_server_by_ip(IpAddr(batch.src_ips()[i]));
      auto dst = topo_->find_server_by_ip(IpAddr(batch.dst_ips()[i]));
      if (!src || !dst) continue;
      std::uint64_t key =
          (static_cast<std::uint64_t>(topo_->server(*src).pod.value) << 32) |
          topo_->server(*dst).pod.value;
      if (batch.successes()[i] != 0 &&
          agent::syn_drop_signature(batch.rtts()[i]) == 0) {
        clean_rtts_[key].push_back(batch.rtts()[i]);
      }
    }
  }

  /// Nearest-rank percentile (ceil(q * n)), the sketch's rank convention.
  [[nodiscard]] std::map<std::uint64_t, std::vector<SimTime>>& pairs() {
    return clean_rtts_;
  }

 private:
  const topo::Topology* topo_;
  std::map<std::uint64_t, std::vector<SimTime>> clean_rtts_;
};

std::int64_t nearest_rank(std::vector<SimTime>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  std::size_t rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(v.size())));
  if (rank == 0) rank = 1;
  return v[rank - 1];
}

std::int64_t pctl(std::vector<std::int64_t>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  std::size_t rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(v.size())));
  if (rank == 0) rank = 1;
  return v[rank - 1];
}

struct PassResult {
  double qps = 0;
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
  std::size_t responses_200 = 0;
  std::size_t responses_304 = 0;
};

/// Closed-loop pass: `concurrency` clients, each issuing the next request
/// the moment its response lands. Headers are per-request (herd passes set
/// If-None-Match).
PassResult run_pass(net::Reactor& reactor, std::uint16_t port,
                    const std::vector<net::HttpRequest>& seq, int concurrency) {
  net::HttpClient client(reactor);
  net::SockAddr dst = net::SockAddr::loopback(port);
  std::vector<std::int64_t> latencies;
  latencies.reserve(seq.size());
  PassResult out;
  std::size_t next = 0;
  std::size_t done = 0;
  std::function<void()> issue = [&]() {
    if (next >= seq.size()) return;
    net::HttpRequest req = seq[next++];
    client.request(dst, std::move(req), std::chrono::milliseconds(2000),
                   [&](const net::HttpResult& r) {
                     if (r.ok) {
                       latencies.push_back(r.total_ns);
                       if (r.response.status == 200) ++out.responses_200;
                       if (r.response.status == 304) ++out.responses_304;
                     }
                     ++done;
                     issue();
                   });
  };
  auto t0 = steady_clock::now();
  for (int i = 0; i < concurrency; ++i) issue();
  reactor.run_until([&] { return done == seq.size(); },
                    steady_clock::now() + std::chrono::seconds(120));
  double elapsed_s = std::chrono::duration<double>(steady_clock::now() - t0).count();
  out.qps = elapsed_s > 0 ? static_cast<double>(done) / elapsed_s : 0;
  out.p50_ns = pctl(latencies, 0.50);
  out.p99_ns = pctl(latencies, 0.99);
  return out;
}

}  // namespace
}  // namespace pingmesh

int main(int argc, char** argv) {
  using namespace pingmesh;  // NOLINT
  bench::parse_args(argc, argv);

  // ---- 1. build rollups from a live fleet ---------------------------------
  bench::heading("serving tier: rollup build (uploader tap)");
  core::SimulationConfig cfg = core::streaming_test_config(42);
  core::PingmeshSimulation sim(cfg);
  const topo::Topology& topo = sim.topology();

  std::vector<ServerId> search = topo.pod(PodId{0}).servers;
  std::vector<ServerId> storage = topo.pod(PodId{1}).servers;
  sim.services().add_service("Search", search);
  sim.services().add_service("Storage", storage);

  serve::RollupConfig rcfg;
  rcfg.tier_width[0] = minutes(1);  // shrunken: all three tiers seal in-run
  rcfg.tier_width[1] = minutes(10);
  rcfg.tier_width[2] = hours(1);
  serve::RollupStore store(topo, &sim.services(), rcfg);
  // The durable twin: same batches, but WAL-appended and checkpointed
  // through the sim's Cosmos store before every apply (section 5).
  serve::PersistentRollupStore durable(topo, &sim.services(), rcfg, sim.cosmos());
  ExactTap exact(topo);
  serve::RecordTapFanout fanout;
  if (sim.streaming() != nullptr) fanout.add(sim.streaming());
  fanout.add(&store);
  fanout.add(&durable);
  fanout.add(&exact);
  sim.uploader_for_test().set_tap(&fanout);

  auto t_build0 = std::chrono::steady_clock::now();
  sim.run_for(minutes(30));
  double build_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_build0).count();

  double staleness_s =
      static_cast<double>(store.now() - store.sealed_until(0)) / kNanosPerSecond;
  bench::note("placed " + std::to_string(store.placed()) + " records into " +
              std::to_string(store.cell_count()) + " cells across " +
              std::to_string(store.pair_series_count()) + " pair series (" +
              std::to_string(build_s) + " s wall)");
  bench::json_metric("rollup_records_placed", static_cast<double>(store.placed()));
  bench::json_metric("rollup_cells", static_cast<double>(store.cell_count()));
  bench::json_metric("rollup_memory_mb",
                     static_cast<double>(store.memory_bytes()) / (1024.0 * 1024.0), "MB");
  bench::json_metric("rollup_staleness_s", staleness_s, "s");
  bench::json_metric("rollup_conservation_ok", store.check_conservation() ? 1 : 0);

  // ---- 2. closed-loop query load ------------------------------------------
  bench::heading("query API: closed-loop QPS vs latency (cold vs warm cache)");
  net::Reactor reactor;
  serve::QueryServiceConfig qcfg;
  qcfg.cache_capacity = 128;
  serve::QueryService svc(reactor, net::SockAddr::loopback(0), topo, store,
                          &sim.services(), qcfg);

  std::vector<net::HttpRequest> cold;
  for (int m = 1; m <= 12; ++m) {
    cold.push_back({"GET", "/query/heatmap?minutes=" + std::to_string(m), {}, ""});
    cold.push_back({"GET", "/query/topk?k=8&metric=p99&minutes=" + std::to_string(m), {}, ""});
    cold.push_back(
        {"GET", "/query/sla?service=Search&minutes=" + std::to_string(m), {}, ""});
    cold.push_back(
        {"GET", "/query/sla?service=Storage&minutes=" + std::to_string(m), {}, ""});
  }
  std::vector<net::HttpRequest> warm;
  for (int rep = 0; rep < 20; ++rep) {
    for (const auto& r : cold) warm.push_back(r);
  }

  PassResult cold_r = run_pass(reactor, svc.port(), cold, 8);
  std::uint64_t hits_before = svc.cache_hits();
  PassResult warm_r = run_pass(reactor, svc.port(), warm, 8);
  double warm_hit_rate =
      warm.empty() ? 0
                   : static_cast<double>(svc.cache_hits() - hits_before) /
                         static_cast<double>(warm.size());

  bench::compare_row("cold pass P99 (render + fill)", "interactive",
                     std::to_string(cold_r.p99_ns / 1000) + " us");
  bench::compare_row("warm pass P99 (LRU hit)", "interactive",
                     std::to_string(warm_r.p99_ns / 1000) + " us");
  bench::note("warm QPS " + std::to_string(warm_r.qps) + ", hit rate " +
              std::to_string(warm_hit_rate));
  bench::json_metric("serving_query_qps", warm_r.qps, "req/s");
  bench::json_metric("serving_query_p50_us",
                     static_cast<double>(warm_r.p50_ns) / 1000.0, "us");
  bench::json_metric("serving_query_p99_us",
                     static_cast<double>(warm_r.p99_ns) / 1000.0, "us");
  bench::json_metric("serving_cold_p99_us",
                     static_cast<double>(cold_r.p99_ns) / 1000.0, "us");
  bench::json_metric("serving_warm_hit_rate", warm_hit_rate);
  // "Interactive latency": P99 well under one tier-0 sub-window.
  bench::json_metric("serving_p99_under_subwindow",
                     warm_r.p99_ns < rcfg.tier_width[0] ? 1 : 0);

  // ---- 3. conditional-GET pinglist herd -----------------------------------
  bench::heading("pinglist herd: warm conditional GET must cost zero renders");
  controller::ControllerHttpService ctrl(reactor, net::SockAddr::loopback(0), topo,
                                         sim.generator());
  const std::size_t herd_agents = 64;
  std::vector<std::string> ips;
  std::vector<std::string> etags(herd_agents);
  for (std::size_t i = 0; i < herd_agents && i < topo.server_count(); ++i) {
    ips.push_back(topo.server(ServerId{static_cast<std::uint32_t>(i)}).ip.str());
  }
  // Warm fetch: one render per agent; remember each validator.
  {
    net::HttpClient client(reactor);
    std::size_t done = 0;
    for (std::size_t i = 0; i < ips.size(); ++i) {
      client.get(net::SockAddr::loopback(ctrl.port()), "/pinglist/" + ips[i],
                 std::chrono::milliseconds(2000), [&etags, &done, i](const net::HttpResult& r) {
                   if (r.ok) {
                     if (auto it = r.response.headers.find("etag");
                         it != r.response.headers.end()) {
                       etags[i] = it->second;
                     }
                   }
                   ++done;
                 });
    }
    reactor.run_until([&] { return done == ips.size(); },
                      steady_clock::now() + std::chrono::seconds(60));
  }
  std::uint64_t renders_before = ctrl.files_rendered();

  std::vector<net::HttpRequest> herd;
  const int herd_rounds = 8;
  for (int round = 0; round < herd_rounds; ++round) {
    for (std::size_t i = 0; i < ips.size(); ++i) {
      herd.push_back({"GET",
                      "/pinglist/" + ips[i],
                      {{"if-none-match", etags[i]}},
                      ""});
    }
  }
  PassResult herd_r = run_pass(reactor, ctrl.port(), herd, 16);
  double herd_304_rate =
      herd.empty() ? 0
                   : static_cast<double>(herd_r.responses_304) /
                         static_cast<double>(herd.size());
  double herd_renders = static_cast<double>(ctrl.files_rendered() - renders_before);
  bench::compare_row("herd re-poll renders", "0", std::to_string(herd_renders));
  bench::note("herd " + std::to_string(herd.size()) + " conditional GETs, " +
              std::to_string(herd_r.qps) + " req/s, 304 rate " +
              std::to_string(herd_304_rate));
  bench::json_metric("serving_herd_qps", herd_r.qps, "req/s");
  bench::json_metric("serving_herd_304_rate", herd_304_rate);
  bench::json_metric("serving_herd_renders", herd_renders);

  // ---- 4. rollup answers vs exact rescan ----------------------------------
  bench::heading("rollup percentiles vs exact rescan (sketch error bound)");
  const double bound = store.relative_error_bound() * 1.10 + 0.005;
  std::size_t checked = 0;
  std::size_t within = 0;
  for (auto& [key, rtts] : exact.pairs()) {
    if (rtts.size() < 100) continue;
    PodId src{static_cast<std::uint32_t>(key >> 32)};
    PodId dst{static_cast<std::uint32_t>(key & 0xffffffffu)};
    auto stats = store.query_pair(src, dst, 0, store.now() + rcfg.tier_width[0]);
    if (!stats) continue;
    ++checked;
    std::int64_t exact_p99 = nearest_rank(rtts, 0.99);
    double rel = exact_p99 > 0
                     ? std::abs(static_cast<double>(stats->p99_ns - exact_p99)) /
                           static_cast<double>(exact_p99)
                     : 0.0;
    if (rel <= bound) ++within;
  }
  double within_frac = checked > 0 ? static_cast<double>(within) /
                                         static_cast<double>(checked)
                                   : 0.0;
  bench::compare_row("pairs within sketch bound",
                     std::to_string(checked) + "/" + std::to_string(checked),
                     std::to_string(within) + "/" + std::to_string(checked));
  bench::json_metric("serving_rollup_pairs_checked", static_cast<double>(checked));
  bench::json_metric("serving_rollup_within_bounds", within_frac >= 1.0 ? 1 : 0);

  // ---- 5. restart recovery -------------------------------------------------
  bench::heading("restart recovery: cold rebuild from checkpoint + WAL");
  serve::RollupStore recovered(topo, &sim.services(), rcfg);
  auto t_rec0 = steady_clock::now();
  serve::RollupRecoveryStats rst = serve::recover_rollup_store(recovered, sim.cosmos());
  double recovery_ms =
      std::chrono::duration<double, std::milli>(steady_clock::now() - t_rec0).count();
  bool digest_match = recovered.digest() == durable.store().digest();
  bench::compare_row("recovered digest", "writer-identical",
                     digest_match ? "writer-identical" : "MISMATCH");
  bench::note("replayed " + std::to_string(rst.wal_frames_replayed) + " WAL frames (" +
              std::to_string(rst.replayed_records) + " records) over " +
              (rst.from_checkpoint
                   ? "checkpoint seq " + std::to_string(rst.checkpoint_seq)
                   : std::string("no checkpoint")) +
              " in " + std::to_string(recovery_ms) + " ms");
  bench::json_metric("serving_recovery_ms", recovery_ms, "ms");
  bench::json_metric("serving_recovery_digest_match", digest_match ? 1 : 0);
  bench::json_metric("serving_recovery_wal_frames",
                     static_cast<double>(rst.wal_frames_replayed));
  bench::json_metric("serving_wal_mb",
                     static_cast<double>(durable.wal_bytes()) / (1024.0 * 1024.0), "MB");
  bench::json_metric("serving_segments_written",
                     static_cast<double>(durable.segments_written()));

  // Cross-replica revalidation: the ETag a live replica minted before the
  // restart must come back 304 from a service over the recovered store —
  // the validator is derived from (store version, path) only, and recovery
  // restores the version.
  serve::QueryService pre(topo, store, &sim.services());
  serve::QueryService post(topo, recovered, &sim.services());
  net::HttpRequest hm{"GET", "/query/heatmap?minutes=10", {}, ""};
  net::HttpResponse warm200 = pre.handle(hm);
  int cross_304 = 0;
  if (warm200.status == 200) {
    net::HttpRequest cond = hm;
    cond.headers["if-none-match"] = warm200.headers.at("etag");
    cross_304 = post.handle(cond).status == 304 ? 1 : 0;
  }
  bench::compare_row("pre-restart ETag on recovered replica", "304",
                     cross_304 != 0 ? "304" : "MISS");
  bench::json_metric("serving_recovery_cross_replica_304", cross_304);

  bool ok = herd_renders == 0 && herd_304_rate >= 1.0 && within_frac >= 1.0 &&
            checked > 0 && store.check_conservation() && warm_hit_rate > 0.9 &&
            digest_match && cross_304 == 1 && durable.segments_written() > 0;
  bench::note(ok ? "serving tier OK" : "serving tier FAILED");
  return ok ? 0 : 1;
}

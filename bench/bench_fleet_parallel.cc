// Sharded fleet engine: parallel speedup with bit-identical results.
//
// The same medium deployment is simulated twice — worker_threads=1 and
// worker_threads=8 — over identical virtual time. Probe outcomes are pure
// functions of (seed, five-tuple, launch time) under the counter-based RNG,
// and deferred uploads drain in server-id order after the shard barrier, so
// the two runs must produce byte-identical Cosmos record streams and SLA
// tables. That identity is the hard check here (the harness exits non-zero
// on divergence); the wall-clock speedup depends on the cores the host
// actually has and is reported, not asserted.
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>

#include "agent/record.h"
#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/scenarios.h"
#include "core/simulation.h"

namespace {

struct RunResult {
  double wall_seconds = 0;
  std::uint64_t probes = 0;
  int workers = 1;
  std::string records;  // CSV-encoded retained record stream
  std::string sla;      // serialized SLA table
};

RunResult run(int workers, pingmesh::SimTime duration) {
  using namespace pingmesh;
  core::SimulationConfig cfg = core::default_config(7);
  cfg.worker_threads = workers;
  cfg.include_server_sla_rows = true;
  core::PingmeshSimulation sim(cfg);

  auto t0 = std::chrono::steady_clock::now();
  sim.run_for(duration);
  auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.probes = sim.total_probes();
  r.workers = sim.worker_threads();
  r.records = agent::encode_batch(sim.records_between(0, sim.now() + 1));
  std::ostringstream sla;
  for (const auto& row : sim.db().sla_rows) {
    sla << row.window_start << ',' << row.window_end << ','
        << static_cast<int>(row.scope) << ',' << row.scope_id << ',' << row.probes << ','
        << row.successes << ',' << row.failures << ',' << row.drop_signatures << ','
        << row.p50_ns << ',' << row.p99_ns << '\n';
  }
  r.sla = sla.str();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pingmesh;
  bench::parse_args(argc, argv);
  bench::heading("sharded fleet engine: speedup and determinism");

  const int hw = ThreadPool::hardware_workers();
  const int workers = 8;
  const SimTime duration = hours(2);
  std::printf("  hardware concurrency: %d, parallel run uses %d workers\n", hw, workers);

  RunResult serial = run(1, duration);
  std::printf("  serial   (1 worker):  %6.2fs wall, %lu probes\n", serial.wall_seconds,
              static_cast<unsigned long>(serial.probes));
  RunResult par = run(workers, duration);
  std::printf("  parallel (%d workers): %6.2fs wall, %lu probes\n", par.workers,
              par.wall_seconds, static_cast<unsigned long>(par.probes));

  bool identical = serial.probes == par.probes && serial.records == par.records &&
                   serial.sla == par.sla;
  double speedup = par.wall_seconds > 0 ? serial.wall_seconds / par.wall_seconds : 0.0;

  bench::heading("results");
  bench::compare_row("stored records + SLA rows, 1 vs 8 workers", "bit-identical",
                     identical ? "bit-identical" : "DIVERGED");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fx on %d cores", speedup, hw);
  bench::compare_row("tick_agents speedup at 8 workers", ">=3x (8 cores)", buf);
  bench::json_metric("speedup_8_workers", speedup, "x");
  bench::json_metric("hardware_concurrency", hw);
  bench::json_metric("bit_identical", identical ? 1 : 0);
  bench::json_metric("probes", static_cast<double>(serial.probes));

  if (!identical) {
    bench::note("FAIL: parallel run diverged from the serial run");
    return 1;
  }
  if (hw >= 8 && speedup < 3.0) {
    bench::note("warning: speedup below the 3x target despite >=8 cores");
  }
  return 0;
}

// Paper-scale fleet hot path: columnar records, binary extents, sharded tick.
//
// Three sections:
//
//  1. Encode + scan throughput, CSV vs binary columnar, on the medium-Clos
//     record stream (real records from the full-loop sim). The columnar
//     path's target is >=3x on both.
//
//  2. The paper-scale tick: a 100k-server single-DC Clos (50 podsets x 50
//     pods x 40 servers) where every server holds a ~2500-peer pinglist
//     (§3.3.1's level-2 complete graph realization). Pinglists are
//     generated lazily per server inside the shard loop and per-shard
//     RecordColumns arenas are reused across servers, so memory stays
//     bounded regardless of fleet size (peak RSS is reported). The
//     per-server encode blocks are hashed into a server-indexed digest
//     vector, so the run digest is byte-exact comparable across worker
//     counts — the determinism contract at paper scale.
//
//  3. The full-loop medium deployment simulated at 1 and 8 workers over
//     identical virtual time: retained record stream and SLA tables must
//     be bit-identical (the harness exits non-zero on divergence); the
//     speedup is reported, not asserted.
//
// `--scale small` shrinks sections 2 and 3 for the CI perf-smoke job;
// `--scale paper` (default) runs the 100k-server fleet.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "agent/record.h"
#include "agent/record_columns.h"
#include "bench_util.h"
#include "common/thread_pool.h"
#include "controller/generator.h"
#include "core/scenarios.h"
#include "core/simulation.h"
#include "dsa/extent_codec.h"

namespace {

using namespace pingmesh;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Peak resident set (VmHWM) in MiB; 0 when /proc is unavailable.
double peak_rss_mib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  double kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = std::strtod(line + 6, nullptr);
      break;
    }
  }
  std::fclose(f);
  return kib / 1024.0;
}

std::uint64_t fnv1a(std::string_view data, std::uint64_t h = 1469598103934665603ull) {
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

// ---------------------------------------------------------------------------
// Section 1: encode + scan throughput, CSV vs columnar
// ---------------------------------------------------------------------------

struct Throughput {
  double rows_per_s = 0;
  double mb_per_s = 0;  // payload MB (produced for encode, consumed for scan)
};

/// Run `body(batch)` over every batch until ~0.4s elapsed; returns rows/s
/// and MB/s where `bytes(batch)` supplies the payload size processed.
template <typename Body, typename Bytes>
Throughput measure(const std::vector<agent::RecordColumns>& batches, Body body,
                   Bytes bytes) {
  double t0 = now_s();
  std::uint64_t rows = 0;
  double mb = 0;
  do {
    for (const auto& b : batches) {
      body(b);
      rows += b.size();
      mb += static_cast<double>(bytes(b)) / 1e6;
    }
  } while (now_s() - t0 < 0.4);
  double dt = now_s() - t0;
  return {static_cast<double>(rows) / dt, mb / dt};
}

void bench_encode_scan(const std::vector<agent::LatencyRecord>& records) {
  // Slice the stream into upload-batch-sized chunks grouped as the agents
  // produced them (one src per batch dominates, matching production).
  constexpr std::size_t kBatch = 2000;
  std::vector<agent::RecordColumns> batches;
  for (std::size_t i = 0; i < records.size(); i += kBatch) {
    agent::RecordColumns cols;
    for (std::size_t j = i; j < std::min(i + kBatch, records.size()); ++j) {
      cols.push_back(records[j]);
    }
    batches.push_back(std::move(cols));
  }
  if (batches.empty()) return;

  Throughput enc_csv = measure(
      batches, [](const agent::RecordColumns& b) { (void)b.encode_csv(); },
      [](const agent::RecordColumns& b) { return b.encode_csv().size(); });
  Throughput enc_col = measure(
      batches, [](const agent::RecordColumns& b) { (void)dsa::encode_columnar(b); },
      [](const agent::RecordColumns& b) { return dsa::encode_columnar(b).size(); });

  // Scan: decode a whole extent payload and filter on the timestamp column
  // (what scan_cache + SCOPE EXTRACT do per job window).
  std::vector<dsa::Extent> csv_extents(batches.size()), col_extents(batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    csv_extents[i].data = batches[i].encode_csv();
    csv_extents[i].encoding = dsa::ExtentEncoding::kCsv;
    col_extents[i].data = dsa::encode_columnar(batches[i]);
    col_extents[i].encoding = dsa::ExtentEncoding::kColumnar;
  }
  std::uint64_t sink = 0;
  auto scan = [&sink](const dsa::Extent& e) {
    agent::RecordColumns cols = dsa::decode_extent(e);
    const SimTime* ts = cols.timestamps();
    for (std::size_t i = 0; i < cols.size(); ++i) sink += ts[i] >= 0 ? 1 : 0;
  };
  auto measure_scan = [&](const std::vector<dsa::Extent>& extents) {
    double t0 = now_s();
    std::uint64_t rows = 0;
    double mb = 0;
    do {
      for (std::size_t i = 0; i < extents.size(); ++i) {
        scan(extents[i]);
        rows += batches[i].size();
        mb += static_cast<double>(extents[i].data.size()) / 1e6;
      }
    } while (now_s() - t0 < 0.4);
    double dt = now_s() - t0;
    return Throughput{static_cast<double>(rows) / dt, mb / dt};
  };
  Throughput scan_csv = measure_scan(csv_extents);
  Throughput scan_col = measure_scan(col_extents);

  double enc_speedup = enc_csv.rows_per_s > 0 ? enc_col.rows_per_s / enc_csv.rows_per_s : 0;
  double scan_speedup =
      scan_csv.rows_per_s > 0 ? scan_col.rows_per_s / scan_csv.rows_per_s : 0;
  double size_ratio = 0;
  {
    std::size_t csv_b = 0, col_b = 0;
    for (std::size_t i = 0; i < batches.size(); ++i) {
      csv_b += csv_extents[i].data.size();
      col_b += col_extents[i].data.size();
    }
    size_ratio = col_b > 0 ? static_cast<double>(csv_b) / static_cast<double>(col_b) : 0;
  }

  std::printf("  encode  csv:      %8.1f Mrows/s  %8.1f MB/s\n", enc_csv.rows_per_s / 1e6,
              enc_csv.mb_per_s);
  std::printf("  encode  columnar: %8.1f Mrows/s  %8.1f MB/s\n", enc_col.rows_per_s / 1e6,
              enc_col.mb_per_s);
  std::printf("  scan    csv:      %8.1f Mrows/s  %8.1f MB/s\n", scan_csv.rows_per_s / 1e6,
              scan_csv.mb_per_s);
  std::printf("  scan    columnar: %8.1f Mrows/s  %8.1f MB/s  (sink %llu)\n",
              scan_col.rows_per_s / 1e6, scan_col.mb_per_s,
              static_cast<unsigned long long>(sink));

  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1fx", enc_speedup);
  bench::compare_row("columnar encode speedup vs CSV", ">=3x", buf);
  std::snprintf(buf, sizeof(buf), "%.1fx", scan_speedup);
  bench::compare_row("columnar scan speedup vs CSV", ">=3x", buf);
  std::snprintf(buf, sizeof(buf), "%.1fx smaller", size_ratio);
  bench::compare_row("columnar extent size vs CSV", ">=3x smaller", buf);

  bench::json_metric("encode_csv_rows_per_s", enc_csv.rows_per_s, "rows/s");
  bench::json_metric("encode_columnar_rows_per_s", enc_col.rows_per_s, "rows/s");
  bench::json_metric("encode_columnar_mb_per_s", enc_col.mb_per_s, "MB/s");
  bench::json_metric("scan_csv_rows_per_s", scan_csv.rows_per_s, "rows/s");
  bench::json_metric("scan_columnar_rows_per_s", scan_col.rows_per_s, "rows/s");
  bench::json_metric("scan_columnar_mb_per_s", scan_col.mb_per_s, "MB/s");
  bench::json_metric("encode_speedup", enc_speedup, "x");
  bench::json_metric("scan_speedup", scan_speedup, "x");
  bench::json_metric("size_ratio_csv_over_columnar", size_ratio, "x");
  if (enc_speedup < 3.0 || scan_speedup < 3.0) {
    bench::note("warning: columnar speedup below the 3x target");
  }
}

// ---------------------------------------------------------------------------
// Section 2: paper-scale fleet tick
// ---------------------------------------------------------------------------

struct TickResult {
  double wall_seconds = 0;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  std::uint64_t digest = 0;  // order-stable over servers, worker-independent
};

/// One synthetic probe record for target j of `pl`; pure function of
/// (src, dst, j) so any worker count produces identical bytes.
agent::LatencyRecord synth_record(const controller::Pinglist& pl, std::size_t j) {
  const controller::PingTarget& t = pl.targets[j];
  std::uint64_t h = mix(mix(0x243F6A8885A308D3ull, pl.server_ip.v), t.ip.v);
  h = mix(h, j);
  agent::LatencyRecord r;
  r.timestamp = seconds(10) + static_cast<SimTime>(h % 1000) * 1000;
  r.src_ip = pl.server_ip;
  r.dst_ip = t.ip;
  r.src_port = static_cast<std::uint16_t>(32768 + (h >> 16) % 16384);
  r.dst_port = t.port;
  r.kind = t.kind;
  r.qos = t.qos;
  r.success = (h % 10000) != 0;
  r.rtt = micros(80) + static_cast<SimTime>(h % 400) * 1000;
  if (t.payload_bytes > 0) {
    r.payload_success = r.success;
    r.payload_rtt = r.rtt + micros(120);
    r.payload_bytes = t.payload_bytes;
  }
  return r;
}

TickResult run_fleet_tick(const topo::Topology& topo,
                          const controller::PinglistGenerator& gen, int workers) {
  ThreadPool pool(workers);
  const std::size_t n = topo.server_count();
  std::vector<std::uint64_t> digests(n, 0);
  struct ShardAcc {
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<ShardAcc> acc(static_cast<std::size_t>(pool.worker_count()));
  // One arena per shard, reused across every server the shard ticks: the
  // steady state allocates only the pinglist, never the record batch.
  std::vector<agent::RecordColumns> arenas(static_cast<std::size_t>(pool.worker_count()));

  double t0 = now_s();
  pool.parallel_for_shards(n, [&](int shard, std::size_t begin, std::size_t end) {
    agent::RecordColumns& arena = arenas[static_cast<std::size_t>(shard)];
    ShardAcc& a = acc[static_cast<std::size_t>(shard)];
    for (std::size_t i = begin; i < end; ++i) {
      controller::Pinglist pl =
          gen.generate_for(ServerId{static_cast<std::uint32_t>(i)});
      arena.clear();
      for (std::size_t j = 0; j < pl.targets.size(); ++j) {
        arena.push_back(synth_record(pl, j));
      }
      std::string blob = dsa::encode_columnar(arena);
      digests[i] = fnv1a(blob);
      a.records += arena.size();
      a.bytes += blob.size();
    }
  });
  TickResult r;
  r.wall_seconds = now_s() - t0;
  for (const ShardAcc& a : acc) {
    r.records += a.records;
    r.bytes += a.bytes;
  }
  r.digest = 1469598103934665603ull;
  for (std::uint64_t d : digests) r.digest = mix(r.digest, d);
  return r;
}

void bench_paper_tick(bool paper_scale) {
  // Two mirrored DCs (the ip plan caps one DC at 64k servers). At paper
  // scale each DC has 2500 pods, so a server's level-2 complete graph alone
  // is ~2500 ToR peers — the paper's "2000-5000 peers per pinglist" band.
  topo::DcSpec spec;
  spec.name = "DC-paper-a";
  spec.region = "US Central";
  if (paper_scale) {
    spec.podsets = 50;  // 2 x (50 x 50 x 20) = 100,000 servers
    spec.pods_per_podset = 50;
    spec.servers_per_pod = 20;
  } else {
    spec.podsets = 4;  // 2 x (4 x 5 x 5) = 200 servers (CI smoke)
    spec.pods_per_podset = 5;
    spec.servers_per_pod = 5;
  }
  topo::DcSpec spec_b = spec;
  spec_b.name = "DC-paper-b";
  spec_b.region = "US East";
  topo::Topology topo = topo::Topology::build({spec, spec_b});
  controller::GeneratorConfig gcfg;
  gcfg.max_targets_per_server = 2500;  // paper: 2000-5000 peers per server
  controller::PinglistGenerator gen(topo, gcfg);

  std::size_t peers = gen.generate_for(ServerId{0}).targets.size();
  std::printf("  fleet: %zu servers, %zu-peer pinglists\n", topo.server_count(), peers);

  const int hw = ThreadPool::hardware_workers();
  const int par = std::max(2, std::min(8, hw));  // never vacuously 1-vs-1
  TickResult serial = run_fleet_tick(topo, gen, 1);
  TickResult parallel = run_fleet_tick(topo, gen, par);

  auto report = [](const char* label, const TickResult& t) {
    std::printf("  %-22s %6.2fs  %8.1f Mrec/s  %7.1f MB encoded\n", label,
                t.wall_seconds,
                static_cast<double>(t.records) / t.wall_seconds / 1e6,
                static_cast<double>(t.bytes) / 1e6);
  };
  report("tick (1 worker):", serial);
  char lbl[32];
  std::snprintf(lbl, sizeof(lbl), "tick (%d workers):", par);
  report(lbl, parallel);

  bool identical = serial.digest == parallel.digest && serial.records == parallel.records;
  bench::compare_row("per-server extent blocks, 1 vs N workers", "byte-identical",
                     identical ? "byte-identical" : "DIVERGED");
  double rss = peak_rss_mib();
  std::printf("  peak RSS: %.0f MiB\n", rss);

  bench::json_metric("fleet_servers", static_cast<double>(topo.server_count()));
  bench::json_metric("pinglist_peers", static_cast<double>(peers));
  bench::json_metric("tick_records", static_cast<double>(serial.records));
  bench::json_metric("tick_records_per_s",
                     static_cast<double>(parallel.records) / parallel.wall_seconds,
                     "rows/s");
  bench::json_metric("tick_encode_mb_per_s",
                     static_cast<double>(parallel.bytes) / 1e6 / parallel.wall_seconds,
                     "MB/s");
  bench::json_metric("tick_digest_identical", identical ? 1 : 0);
  bench::json_metric("peak_rss_mib", rss, "MiB");
  if (!identical) {
    bench::note("FAIL: fleet tick digest diverged across worker counts");
    std::exit(1);
  }
}

// ---------------------------------------------------------------------------
// Section 3: full-loop medium deployment, 1 vs 8 workers
// ---------------------------------------------------------------------------

struct RunResult {
  double wall_seconds = 0;
  std::uint64_t probes = 0;
  int workers = 1;
  std::string records;  // CSV-encoded retained record stream
  std::string sla;      // serialized SLA table
};

RunResult run(int workers, SimTime duration, std::vector<agent::LatencyRecord>* out) {
  core::SimulationConfig cfg = core::default_config(7);
  cfg.worker_threads = workers;
  cfg.include_server_sla_rows = true;
  core::PingmeshSimulation sim(cfg);

  double t0 = now_s();
  sim.run_for(duration);
  double t1 = now_s();

  RunResult r;
  r.wall_seconds = t1 - t0;
  r.probes = sim.total_probes();
  r.workers = sim.worker_threads();
  std::vector<agent::LatencyRecord> records = sim.records_between(0, sim.now() + 1);
  r.records = agent::encode_batch(records);
  if (out != nullptr) *out = std::move(records);
  std::ostringstream sla;
  for (const auto& row : sim.db().sla_rows) {
    sla << row.window_start << ',' << row.window_end << ','
        << static_cast<int>(row.scope) << ',' << row.scope_id << ',' << row.probes << ','
        << row.successes << ',' << row.failures << ',' << row.drop_signatures << ','
        << row.p50_ns << ',' << row.p99_ns << '\n';
  }
  r.sla = sla.str();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bool paper_scale = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      paper_scale = std::strcmp(argv[i + 1], "small") != 0;
    }
  }

  const int hw = ThreadPool::hardware_workers();
  const int workers = 8;
  const SimTime duration = paper_scale ? hours(2) : minutes(30);
  std::printf("hardware concurrency: %d, scale: %s\n", hw,
              paper_scale ? "paper" : "small");

  bench::heading("full loop: speedup and determinism (medium two-DC)");
  std::vector<agent::LatencyRecord> medium_records;
  RunResult serial = run(1, duration, &medium_records);
  std::printf("  serial   (1 worker):  %6.2fs wall, %lu probes\n", serial.wall_seconds,
              static_cast<unsigned long>(serial.probes));
  RunResult par = run(workers, duration, nullptr);
  std::printf("  parallel (%d workers): %6.2fs wall, %lu probes\n", par.workers,
              par.wall_seconds, static_cast<unsigned long>(par.probes));

  bool identical = serial.probes == par.probes && serial.records == par.records &&
                   serial.sla == par.sla;
  double speedup = par.wall_seconds > 0 ? serial.wall_seconds / par.wall_seconds : 0.0;

  bench::compare_row("stored records + SLA rows, 1 vs 8 workers", "bit-identical",
                     identical ? "bit-identical" : "DIVERGED");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fx on %d cores", speedup, hw);
  bench::compare_row("tick_agents speedup at 8 workers", ">=3x (8 cores)", buf);
  bench::json_metric("speedup_8_workers", speedup, "x");
  bench::json_metric("hardware_concurrency", hw);
  bench::json_metric("bit_identical", identical ? 1 : 0);
  bench::json_metric("probes", static_cast<double>(serial.probes));

  bench::heading("encode + scan throughput: CSV vs binary columnar");
  bench_encode_scan(medium_records);

  bench::heading(paper_scale ? "paper-scale fleet tick (100k servers)"
                             : "fleet tick (small scale)");
  bench_paper_tick(paper_scale);

  if (!identical) {
    bench::note("FAIL: parallel run diverged from the serial run");
    return 1;
  }
  if (hw >= 8 && speedup < 3.0) {
    bench::note("warning: speedup below the 3x target despite >=8 cores");
  }
  return 0;
}

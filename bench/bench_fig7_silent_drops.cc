// Figure 7 reproduction: silent random packet drops of a Spine switch.
//
// Paper: "Under normal condition, the percentage of latency should be at
// around 1e-4..1e-5. But it suddenly jumped up to around 2e-3." The
// incident was confirmed DC-wide, the pattern pointed at the Spine layer,
// TCP traceroute against affected pairs pinpointed one Spine switch, and
// "the silent random packet drops were gone after we isolated the switch
// from serving live traffic".
//
// Reproduction timeline (hours of one virtual day, hourly measurement
// windows): a spine develops fabric bit-flip drops at hour 16; the hourly
// drop-rate series jumps from baseline to ~1e-3..1e-2 /, the localizer
// fingers the right spine, the repair service isolates it, and the series
// returns to baseline.
#include <cstdio>

#include "analysis/droprate.h"
#include "analysis/silentdrop.h"
#include "autopilot/repair.h"
#include "bench_util.h"
#include "common/ascii_chart.h"
#include "controller/generator.h"
#include "core/scenarios.h"
#include "netsim/simnet.h"

int main(int argc, char** argv) {
  pingmesh::bench::parse_args(argc, argv);
  using namespace pingmesh;
  bench::heading("Figure 7: silent random packet drops of a Spine switch");

  topo::Topology topo = topo::Topology::build({topo::medium_dc_spec("DC1", "US West")});
  netsim::SimNetwork net(topo, 707);
  SwitchId bad_spine = topo.dcs()[0].spines[5];
  const SimTime kFaultStart = hours(16);
  net.faults().add_silent_random_drop(bad_spine, 0.015, kFaultStart,
                                      netsim::FaultInjector::kForever);

  autopilot::RepairService repair(
      autopilot::RepairConfig{}, nullptr,
      [&](SwitchId sw) { net.faults().clear_all_on(sw); });

  controller::GeneratorConfig gcfg;
  gcfg.enable_inter_dc = false;
  gcfg.payload_every_kth = 0;
  controller::PinglistGenerator gen(topo, gcfg);
  analysis::SilentDropLocalizer localizer;

  const int kHours = 30;
  std::printf("\n  %-5s %12s  %s\n", "hour", "drop rate", "event");
  double baseline_max = 0, incident_max = 0, post_max = 0;
  bool isolated = false;
  SwitchId pinpointed;
  int isolation_hour = -1;
  std::vector<std::pair<std::string, double>> rate_series;

  for (int hour = 0; hour < kHours; ++hour) {
    SimTime window_start = hours(hour);
    core::FleetProbeDriver driver(topo, net, gen);
    std::vector<agent::LatencyRecord> records;
    driver.run_dense(window_start, 4, minutes(1), [&](const core::FleetProbe& p) {
      records.push_back(bench::to_record(topo, p));
    });

    analysis::DropEstimate est = analysis::estimate_drop_rate(records);
    std::string event;
    if (!isolated) {
      auto affected = localizer.detect_affected_dc(records, topo);
      if (affected) {
        analysis::SilentDropReport report =
            localizer.localize(records, topo, net, window_start + minutes(30));
        event = "INCIDENT dc=" + topo.dc(report.affected_dc).name +
                " tier=" + analysis::suspect_tier_name(report.tier);
        if (report.culprit.valid()) {
          pinpointed = report.culprit;
          repair.isolate_and_rma(report.culprit, "silent random packet drops",
                                 window_start + minutes(45));
          isolated = true;
          isolation_hour = hour;
          event += " -> isolated " + topo.sw(report.culprit).name + " for RMA";
        }
      }
    }
    std::printf("  %-5d %12s  %s\n", hour, format_rate(est.rate()).c_str(), event.c_str());
    char label[16];
    std::snprintf(label, sizeof(label), "h%02d", hour);
    rate_series.emplace_back(label, est.rate());

    if (hour < 16) {
      baseline_max = std::max(baseline_max, est.rate());
    } else if (!isolated || hour <= isolation_hour) {
      incident_max = std::max(incident_max, est.rate());
    } else {
      post_max = std::max(post_max, est.rate());
    }
  }

  bench::heading("the Figure 7 shape (log-scale drop rate)");
  std::fputs(
      ascii_chart(rate_series, AsciiChartOptions{.width = 50, .log_scale = true}).c_str(),
      stdout);

  bench::heading("summary vs paper");
  bench::compare_row("baseline drop rate", "1e-4..1e-5", format_rate(baseline_max));
  bench::compare_row("incident drop rate", "~2e-3", format_rate(incident_max));
  bench::compare_row("pinpointed switch", "one Spine switch",
                     pinpointed.valid() ? topo.sw(pinpointed).name : "(none)");
  bench::compare_row("post-isolation drop rate", "back to baseline",
                     format_rate(post_max));

  bench::heading("shape checks");
  bool jump = incident_max > 10 * std::max(baseline_max, 1e-6);
  bool right_switch = pinpointed == bad_spine;
  bool recovered = post_max < incident_max / 10;
  bench::note(std::string("drop rate steps up >=10x:     ") + (jump ? "yes" : "NO"));
  bench::note(std::string("correct spine pinpointed:     ") + (right_switch ? "yes" : "NO"));
  bench::note(std::string("recovery after isolation:     ") + (recovered ? "yes" : "NO"));
  return (jump && right_switch && recovered) ? 0 : 1;
}

// §6.2 "QoS monitoring" reproduction.
//
// "After Pingmesh was deployed, network QoS was introduced into our data
// center which differentiates high priority and low priority packets based
// on DSCP. ... we extended the Pingmesh Generator to generate pinglists for
// both high and low priority classes" (the agent listens on an extra TCP
// port for the low class).
//
// The point of monitoring both classes: when the network gets congested,
// the low-priority class degrades first and hardest, and only a per-class
// mesh can see that. This harness runs the dual-class mesh on a calm
// network and under spine congestion and reports per-class latency.
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "controller/generator.h"
#include "core/scenarios.h"
#include "netsim/simnet.h"

namespace {

using namespace pingmesh;

struct ClassStats {
  LatencyHistogram high;
  LatencyHistogram low;
};

ClassStats run_mesh(const topo::Topology& topo, bool congested, std::uint64_t seed) {
  netsim::SimNetwork net(topo, seed);
  if (congested) {
    for (SwitchId spine : topo.dcs()[0].spines) {
      net.faults().add_congestion(spine, /*queue_scale=*/6.0, /*drop_prob=*/0.0);
    }
  }
  controller::GeneratorConfig gcfg;
  gcfg.enable_inter_dc = false;
  gcfg.enable_qos = true;  // duplicate every target on the low-priority class
  gcfg.payload_every_kth = 0;
  controller::PinglistGenerator gen(topo, gcfg);
  core::FleetProbeDriver driver(topo, net, gen);

  ClassStats stats;
  driver.run_dense(0, 15, seconds(10), [&](const core::FleetProbe& p) {
    if (!p.outcome.success || p.outcome.syn_transmissions > 1 || !p.dst.valid()) return;
    const topo::Server& src = topo.server(p.src);
    const topo::Server& dst = topo.server(p.dst);
    if (src.podset == dst.podset) return;  // spine-crossing traffic only
    if (p.target->qos == controller::QosClass::kLow) {
      stats.low.record(p.outcome.rtt);
    } else {
      stats.high.record(p.outcome.rtt);
    }
  });
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  pingmesh::bench::parse_args(argc, argv);
  bench::heading("QoS monitoring (paper section 6.2): dual-class pinglists");

  topo::Topology topo = topo::Topology::build({topo::small_dc_spec("DC1", "US West")});
  ClassStats calm = run_mesh(topo, false, 621);
  ClassStats congested = run_mesh(topo, true, 622);

  std::printf("  cross-podset probes per class: %lu high / %lu low\n\n",
              static_cast<unsigned long>(calm.high.count()),
              static_cast<unsigned long>(calm.low.count()));
  std::printf("  %-26s %12s %12s\n", "", "high class", "low class");
  std::printf("  %-26s %12s %12s\n", "calm      P50",
              format_latency_ns(calm.high.p50()).c_str(),
              format_latency_ns(calm.low.p50()).c_str());
  std::printf("  %-26s %12s %12s\n", "calm      P99",
              format_latency_ns(calm.high.p99()).c_str(),
              format_latency_ns(calm.low.p99()).c_str());
  std::printf("  %-26s %12s %12s\n", "congested P50",
              format_latency_ns(congested.high.p50()).c_str(),
              format_latency_ns(congested.low.p50()).c_str());
  std::printf("  %-26s %12s %12s\n", "congested P99",
              format_latency_ns(congested.high.p99()).c_str(),
              format_latency_ns(congested.low.p99()).c_str());

  double high_degradation = static_cast<double>(congested.high.p99()) /
                            static_cast<double>(calm.high.p99());
  double low_degradation = static_cast<double>(congested.low.p99()) /
                           static_cast<double>(calm.low.p99());
  char buf[64];
  std::snprintf(buf, sizeof(buf), "high %.1fx vs low %.1fx", high_degradation,
                low_degradation);
  bench::compare_row("P99 degradation under congestion", "low class suffers more", buf);

  bench::heading("shape checks");
  bool classes_flow = calm.high.count() > 1000 && calm.low.count() > 1000;
  bool low_hit_harder = low_degradation > 1.5 * high_degradation;
  bool calm_similar = calm.low.p50() < 3 * calm.high.p50();
  bench::note(std::string("both classes measured:              ") +
              (classes_flow ? "yes" : "NO"));
  bench::note(std::string("low class degrades first/hardest:   ") +
              (low_hit_harder ? "yes" : "NO"));
  bench::note(std::string("classes comparable when calm:       ") +
              (calm_similar ? "yes" : "NO"));
  return (classes_flow && low_hit_harder && calm_similar) ? 0 : 1;
}

// Black-hole hunt: seed switch black-holes of both kinds into a data
// center, let Pingmesh find them from latency data alone, and repair them
// through the budgeted reload service (paper §5.1).
//
// Demonstrates: fault injection, the detection algorithm, the podset
// escalation rule, and the repair loop.
#include <cstdio>

#include "analysis/blackhole.h"
#include "autopilot/repair.h"
#include "controller/generator.h"
#include "core/fleet.h"
#include "netsim/simnet.h"
#include "topology/topology.h"

int main() {
  using namespace pingmesh;

  topo::Topology topo = topo::Topology::build({topo::medium_dc_spec("DC1", "US West")});
  netsim::SimNetwork net(topo, 1337);

  // Inject: one type-1 black-hole (corrupted TCAM src/dst entries) and one
  // type-2 (five-tuple / ECMP-related) on two different ToRs.
  SwitchId tor_a = topo.pods()[7].tor;
  SwitchId tor_b = topo.pods()[23].tor;
  net.faults().add_blackhole(tor_a, netsim::BlackholeMode::kSrcDstPair, 0.08);
  net.faults().add_blackhole(tor_b, netsim::BlackholeMode::kFiveTuple, 0.30);
  std::printf("injected: type-1 black-hole on %s, type-2 on %s\n",
              topo.sw(tor_a).name.c_str(), topo.sw(tor_b).name.c_str());

  // Probe the fleet the way the controller's pinglists prescribe.
  controller::GeneratorConfig gcfg;
  gcfg.enable_inter_dc = false;
  controller::PinglistGenerator gen(topo, gcfg);
  core::FleetProbeDriver driver(topo, net, gen);
  std::vector<agent::LatencyRecord> records;
  driver.run_dense(0, 8, seconds(10), [&](const core::FleetProbe& p) {
    agent::LatencyRecord r;
    r.timestamp = p.time;
    r.src_ip = topo.server(p.src).ip;
    r.dst_ip = p.target->ip;
    r.src_port = p.src_port;
    r.dst_port = p.target->port;
    r.success = p.outcome.success;
    r.rtt = p.outcome.rtt;
    records.push_back(r);
  });
  std::printf("probed: %lu probes -> %zu latency records\n\n",
              static_cast<unsigned long>(driver.probes_fired()), records.size());

  // Detect from the records alone — no switch counters, no ground truth
  // (§6: "simply using switch SNMP and syslog data does not work since they
  // do not tell us about packet black-holes").
  analysis::BlackholeDetector detector;
  analysis::BlackholeReport report = detector.detect(records, topo);

  std::printf("detection report:\n");
  for (const analysis::TorScore& candidate : report.candidates) {
    std::printf("  candidate %s: %lu/%lu pairs black (score %.3f)\n",
                topo.sw(candidate.tor).name.c_str(),
                static_cast<unsigned long>(candidate.pairs_black),
                static_cast<unsigned long>(candidate.pairs_total), candidate.score());
  }
  for (PodsetId podset : report.escalations) {
    std::printf("  escalation: podset %u — all ToRs symptomatic, investigate Leaf/Spine\n",
                podset.value);
  }

  // Repair: budgeted reloads clear the TCAM corruption.
  autopilot::RepairService repair(
      autopilot::RepairConfig{.max_reloads_per_day = 20},
      [&](SwitchId sw) { net.faults().clear_blackholes_on(sw); }, nullptr);
  for (const analysis::TorScore& candidate : report.candidates) {
    bool executed = repair.request_reload(candidate.tor, "pingmesh black-hole detection",
                                          hours(1));
    std::printf("reload %s: %s\n", topo.sw(candidate.tor).name.c_str(),
                executed ? "executed" : "deferred (daily budget)");
  }

  // Verify the network is clean again.
  std::size_t still_active = net.faults().blackholed_switches(hours(2)).size();
  std::printf("\nblack-holes still active after repair: %zu\n", still_active);
  std::printf("reloads remaining today: %d\n", repair.reloads_remaining_today(hours(2)));
  return still_active == 0 ? 0 : 1;
}

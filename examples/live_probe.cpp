// Live probe: the production data path on real sockets, end to end, inside
// one process on loopback.
//
//   Pingmesh Controller  -- HTTP RESTful service serving pinglist XML
//        ^ GET /pinglist/<ip>            (behind an SLB VIP abstraction)
//   Pingmesh Agent state machine -- decides when to fetch and whom to probe
//        v
//   epoll TCP prober  ->  TCP probe responders   (fresh port per probe)
//
// The topology is a small virtual DC, but every byte here crosses a real
// kernel socket; latency percentiles printed at the end are real loopback
// RTTs measured exactly the way the agent measures production RTTs.
#include <chrono>
#include <cstdio>
#include <unordered_map>

#include "agent/agent.h"
#include "common/stats.h"
#include "controller/generator.h"
#include "controller/service.h"
#include "net/reactor.h"
#include "net/tcp_probe.h"
#include "topology/topology.h"

int main() {
  using namespace pingmesh;
  using namespace std::chrono_literals;

  // --- the "data center": topology for the controller, responders for the
  // --- data plane. Every simulated server maps to a loopback port.
  topo::Topology topo = topo::Topology::build({topo::small_dc_spec("DC1", "US West")});
  net::Reactor reactor;

  controller::GeneratorConfig gcfg;
  gcfg.enable_inter_dc = false;
  gcfg.intra_pod_interval = seconds(10);
  gcfg.intra_dc_interval = seconds(10);
  controller::PinglistGenerator gen(topo, gcfg);
  controller::ControllerHttpService controller_svc(reactor, net::SockAddr::loopback(0),
                                                   topo, gen);
  std::printf("controller: serving pinglists on 127.0.0.1:%u\n", controller_svc.port());

  // One responder stands in for each *pod* (8 servers share a ToR anyway);
  // a map routes a server IP to its pod's responder port.
  std::unordered_map<std::uint32_t, std::uint16_t> port_of_ip;
  std::vector<std::unique_ptr<net::TcpProbeServer>> responders;
  for (const topo::Pod& pod : topo.pods()) {
    responders.push_back(
        std::make_unique<net::TcpProbeServer>(reactor, net::SockAddr::loopback(0)));
    for (ServerId s : pod.servers) {
      port_of_ip[topo.server(s).ip.v] = responders.back()->port();
    }
  }
  std::printf("data plane: %zu probe responders (one per pod)\n", responders.size());

  // --- the agent of server 0, wired to the real HTTP fetch path.
  controller::SlbVip vip;
  vip.add_backend("controller-0");
  controller::HttpPinglistSource pinglist_source(
      reactor, vip, {net::SockAddr::loopback(controller_svc.port())});

  class NullUploader final : public agent::Uploader {
   public:
    bool upload(const agent::RecordColumns&) override { return true; }
  } uploader;

  const topo::Server& self = topo.servers()[0];
  agent::AgentConfig acfg;
  acfg.pinglist_refresh = minutes(5);
  agent::PingmeshAgent agent(self.name, self.ip, acfg, uploader);

  net::TcpProber prober(reactor);
  LatencyHistogram connect_hist;
  LatencyHistogram payload_hist;
  std::uint64_t launched = 0, done = 0, failed = 0;

  // Drive the agent on wall-clock time for ~3 seconds; accelerate its
  // virtual clock so 10s probe intervals elapse quickly (1 wall ms = 1
  // virtual s): the state machine only sees the virtual timestamps.
  auto wall_start = std::chrono::steady_clock::now();
  auto virtual_now = [&] {
    auto wall = std::chrono::steady_clock::now() - wall_start;
    return static_cast<SimTime>(
        std::chrono::duration_cast<std::chrono::milliseconds>(wall).count() *
        kNanosPerSecond / 1000 * 100);
  };

  auto deadline = wall_start + 3s;
  while (std::chrono::steady_clock::now() < deadline) {
    SimTime now = virtual_now();
    agent::PingmeshAgent::TickActions actions = agent.tick(now);
    if (actions.fetch_pinglist) {
      agent.on_pinglist(pinglist_source.fetch(self.ip), now);
    }
    for (const agent::ProbeRequest& req : actions.probes) {
      auto it = port_of_ip.find(req.target.ip.v);
      if (it == port_of_ip.end()) continue;
      ++launched;
      int payload = req.target.kind == controller::ProbeKind::kTcpPayload
                        ? static_cast<int>(req.target.payload_bytes)
                        : 0;
      prober.probe(net::SockAddr::loopback(it->second), payload, 1000ms,
                   [&, req](const net::TcpProbeResult& r) {
                     ++done;
                     if (!r.connected) ++failed;
                     if (r.connected) connect_hist.record(r.connect_ns);
                     if (r.payload_ok) payload_hist.record(r.payload_ns);
                     agent::ProbeResult result;
                     result.success = r.connected;
                     result.rtt = r.connect_ns;
                     result.payload_success = r.payload_ok;
                     result.payload_rtt = r.payload_ns;
                     agent.on_probe_result(req, result, virtual_now());
                   });
    }
    reactor.run_once(5ms);
  }
  reactor.run_until([&] { return done == launched; },
                    std::chrono::steady_clock::now() + 2s);

  std::printf("\nagent %s probed %lu times (%lu failed), %zu targets from pinglist v%lu\n",
              self.name.c_str(), static_cast<unsigned long>(launched),
              static_cast<unsigned long>(failed), agent.target_count(),
              static_cast<unsigned long>(agent.pinglist_version()));
  std::printf("real loopback TCP connect RTT: P50 %s  P99 %s  (n=%lu)\n",
              format_latency_ns(connect_hist.p50()).c_str(),
              format_latency_ns(connect_hist.p99()).c_str(),
              static_cast<unsigned long>(connect_hist.count()));
  if (payload_hist.count() > 0) {
    std::printf("payload echo RTT (1000B):      P50 %s  P99 %s  (n=%lu)\n",
                format_latency_ns(payload_hist.p50()).c_str(),
                format_latency_ns(payload_hist.p99()).c_str(),
                static_cast<unsigned long>(payload_hist.count()));
  }

  agent::CounterSnapshot counters = agent.collect_counters(virtual_now());
  std::printf("agent counters (the PA path): probes=%lu successes=%lu drop_rate=%s\n",
              static_cast<unsigned long>(counters.probes),
              static_cast<unsigned long>(counters.successes),
              format_rate(counters.drop_rate()).c_str());
  return launched > 0 && connect_hist.count() > 0 ? 0 : 1;
}

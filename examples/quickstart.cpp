// Quickstart: stand up a complete Pingmesh deployment on the simulator,
// let it run for a virtual hour, and look at what the system produces —
// latency SLAs, the pod-pair heatmap, and the "is it a network issue?"
// answer (paper §4.3).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "analysis/heatmap.h"
#include "analysis/server_selection.h"
#include "analysis/sla.h"
#include "core/scenarios.h"
#include "core/simulation.h"

int main() {
  using namespace pingmesh;

  // 1. A deployment: one small data center, every server runs an agent,
  //    the controller generates pinglists from the topology, the DSA
  //    pipeline aggregates on virtual time.
  core::SimulationConfig cfg = core::small_test_config(/*seed=*/2026);
  cfg.include_server_sla_rows = true;  // micro scope, feeds server selection
  core::PingmeshSimulation sim(cfg);
  std::printf("Pingmesh quickstart: %zu servers, %zu switches, %zu pods\n",
              sim.topology().server_count(), sim.topology().switch_count(),
              sim.topology().pods().size());

  // 2. Track a service: SLA is computed per service by mapping it to the
  //    servers it runs on.
  const auto& pod0 = sim.topology().pods()[0];
  ServiceId search = sim.services().add_service("Search", pod0.servers);

  // 3. Run ~75 virtual minutes of always-on probing (enough for the hourly
  //    SCOPE job to land in the database).
  sim.run_for(minutes(75));
  std::printf("probes fired: %lu, records stored: %lu, db rows: %zu\n",
              static_cast<unsigned long>(sim.total_probes()),
              static_cast<unsigned long>(sim.cosmos().total_records()),
              sim.db().total_rows());

  // 4. Network SLA of the data center (drop rate + P50/P99, §4.3).
  for (const auto& row : sim.db().sla_rows) {
    if (row.scope == dsa::SlaScope::kDc) {
      std::printf("DC SLA   window@%4.0fmin: P50 %8s  P99 %8s  drop %s  (%lu probes)\n",
                  to_seconds(row.window_start) / 60.0,
                  format_latency_ns(row.p50_ns).c_str(),
                  format_latency_ns(row.p99_ns).c_str(),
                  format_rate(row.drop_rate()).c_str(),
                  static_cast<unsigned long>(row.probes));
    }
  }

  // 5. The question the system exists to answer: is the Search slowdown a
  //    network issue?
  analysis::IssueVerdict verdict = analysis::judge_network_issue(
      sim.db(), dsa::SlaScope::kService, search.value, 0, sim.now());
  std::printf("\n\"Is it a network issue?\" for Search: %s\n  evidence: %s\n",
              verdict.network_issue ? "YES" : "no", verdict.evidence.c_str());

  // 6. The visualization everyone keeps open (§6.3): pod-pair P99 heatmap.
  analysis::Heatmap map(sim.topology(), DcId{0});
  map.load(sim.db().latest_pod_pair_window());
  analysis::PatternResult pattern = analysis::classify_pattern(map);
  std::printf("\npod-pair heatmap (G green, Y yellow, R red, . no data):\n%s",
              map.ascii().c_str());
  std::printf("pattern: %s (green %.0f%%)\n",
              analysis::latency_pattern_name(pattern.pattern),
              pattern.green_fraction * 100);

  // 7. Server selection (§6.2): which candidate servers have the healthiest
  //    network view right now?
  std::vector<ServerId> candidates(pod0.servers.begin(), pod0.servers.begin() + 4);
  auto ranked = analysis::rank_servers_for_selection(sim.db(), candidates);
  std::printf("\nserver selection (best network first):\n");
  for (const auto& score : ranked) {
    std::printf("  %-18s drop %-10s P99 %-8s (%lu probes)\n",
                sim.topology().server(score.server).name.c_str(),
                format_rate(score.drop_rate).c_str(),
                format_latency_ns(score.p99_ns).c_str(),
                static_cast<unsigned long>(score.probes));
  }

  // 8. Watchdogs (Autopilot keeps Pingmesh itself honest, §3.5).
  std::printf("\nwatchdogs:\n");
  for (const auto& check : sim.watchdogs().run_checks(sim.now())) {
    std::printf("  [%s] %s: %s\n", autopilot::health_name(check.health),
                check.name.c_str(), check.message.c_str());
  }
  return 0;
}

// Incident triage: the full §5.2 war story as a runnable scenario.
//
//  1. A fleet runs normally; the on-call dashboard is green.
//  2. A spine switch starts dropping packets silently (fabric bit flips) —
//     no SNMP counter, no syslog line, the switch "seems innocent".
//  3. Customers complain; Pingmesh data answers "yes, it IS the network",
//     the pattern points at the Spine tier, traceroute pinpoints the
//     switch, the repair service isolates it for RMA.
//  4. The dashboard goes green again.
#include <cstdio>

#include "analysis/droprate.h"
#include "analysis/heatmap.h"
#include "analysis/silentdrop.h"
#include "autopilot/repair.h"
#include "controller/generator.h"
#include "core/fleet.h"
#include "dsa/jobs.h"
#include "netsim/simnet.h"
#include "topology/topology.h"

namespace {

using namespace pingmesh;

std::vector<agent::LatencyRecord> probe_window(const topo::Topology& topo,
                                               netsim::SimNetwork& net,
                                               const controller::PinglistGenerator& gen,
                                               SimTime start) {
  core::FleetProbeDriver driver(topo, net, gen);
  std::vector<agent::LatencyRecord> records;
  driver.run_dense(start, 6, seconds(10), [&](const core::FleetProbe& p) {
    agent::LatencyRecord r;
    r.timestamp = p.time;
    r.src_ip = topo.server(p.src).ip;
    r.dst_ip = p.target->ip;
    r.src_port = p.src_port;
    r.dst_port = p.target->port;
    r.success = p.outcome.success;
    r.rtt = p.outcome.rtt;
    records.push_back(r);
  });
  return records;
}

void show_health(const char* when, const std::vector<agent::LatencyRecord>& records) {
  analysis::DropEstimate est = analysis::estimate_drop_rate(records);
  std::printf("%-22s drop rate %s over %lu probes\n", when,
              format_rate(est.rate()).c_str(),
              static_cast<unsigned long>(est.successful_probes + est.failed_probes));
}

}  // namespace

int main() {
  using namespace pingmesh;

  topo::Topology topo = topo::Topology::build({topo::medium_dc_spec("DC1", "US West")});
  netsim::SimNetwork net(topo, 52);
  controller::GeneratorConfig gcfg;
  gcfg.enable_inter_dc = false;
  controller::PinglistGenerator gen(topo, gcfg);

  // 1. Normal operations.
  auto baseline = probe_window(topo, net, gen, 0);
  show_health("baseline:", baseline);

  // 2. The silent fault. Nothing in this process will ever read it back —
  //    detection below works purely from probe data.
  SwitchId culprit_truth = topo.dcs()[0].spines[5];
  net.faults().add_silent_random_drop(culprit_truth, 0.018, hours(1));
  auto incident = probe_window(topo, net, gen, hours(1));
  show_health("incident window:", incident);

  // 3a. Is it the network?
  analysis::DropEstimate est = analysis::estimate_drop_rate(incident);
  std::printf("\n'network problem?' -> %s (drop rate %s vs 1e-3 threshold)\n",
              est.rate() > 1e-3 ? "YES, the network is guilty" : "no",
              format_rate(est.rate()).c_str());

  // 3b. Which tier? Which switch?
  analysis::SilentDropLocalizer localizer;
  analysis::SilentDropReport report =
      localizer.localize(incident, topo, net, hours(1) + minutes(30));
  std::printf("localizer: dc=%s tier=%s  (intra-podset %s vs cross-podset %s)\n",
              topo.dc(report.affected_dc).name.c_str(),
              analysis::suspect_tier_name(report.tier),
              format_rate(report.intra_podset_rate).c_str(),
              format_rate(report.cross_podset_rate).c_str());
  std::printf("per-spine loss from traceroute-guided probing (top 4):\n");
  for (std::size_t i = 0; i < report.spine_losses.size() && i < 4; ++i) {
    const analysis::SpineLoss& loss = report.spine_losses[i];
    std::printf("  %-12s %8.3f%%  (%lu probes)\n", topo.sw(loss.spine).name.c_str(),
                loss.loss_rate() * 100, static_cast<unsigned long>(loss.probes));
  }
  if (!report.culprit.valid()) {
    std::printf("no culprit pinpointed — triage failed\n");
    return 1;
  }
  std::printf("culprit: %s (ground truth: %s) %s\n", topo.sw(report.culprit).name.c_str(),
              topo.sw(culprit_truth).name.c_str(),
              report.culprit == culprit_truth ? "-- MATCH" : "-- MISMATCH");

  // 3c. Isolate for RMA (silent drops are not fixed by reloads, §5.2).
  autopilot::RepairService repair(
      autopilot::RepairConfig{}, nullptr,
      [&](SwitchId sw) { net.faults().clear_all_on(sw); });
  repair.isolate_and_rma(report.culprit, "silent random packet drops (fabric bit flips)",
                         hours(1) + minutes(45));
  std::printf("\nisolated %s from live traffic; RMA queue length: %zu\n",
              topo.sw(report.culprit).name.c_str(), repair.rma_queue().size());

  // 4. Green again.
  auto after = probe_window(topo, net, gen, hours(2));
  show_health("after isolation:", after);

  analysis::DropEstimate post = analysis::estimate_drop_rate(after);
  return (report.culprit == culprit_truth && post.rate() < 2e-4) ? 0 : 1;
}

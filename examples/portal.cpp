// The visualization portal (paper §6.3): "It has become a habit for many of
// us to open the visualization portal regularly to see if the network is
// fine. The visualization portal has been used not only by network
// developers and engineers, but also by our customers."
//
// This example runs a Pingmesh deployment on the simulator, then serves an
// operator portal over a REAL HTTP server (the same pm_net stack the
// controller uses):
//
//   GET /            — plain-text landing page
//   GET /health      — pattern classification of the current heatmap
//   GET /heatmap     — the pod-pair heatmap, ASCII
//   GET /heatmap.ppm — the same as a PPM image
//   GET /report      — the full network SLA report
//
// It then plays its own customer: fetches every endpoint through HttpClient
// and prints what the portal returned.
#include <chrono>
#include <cstdio>

#include "analysis/heatmap.h"
#include "core/scenarios.h"
#include "core/simulation.h"
#include "dsa/report.h"
#include "net/http.h"
#include "net/reactor.h"

int main() {
  using namespace pingmesh;
  using namespace std::chrono_literals;

  // A deployment with a brewing problem: one spine is queueing badly.
  core::SimulationConfig cfg = core::small_test_config(63);
  core::PingmeshSimulation sim(cfg);
  sim.services().add_service("Search", sim.topology().pods()[0].servers);
  for (SwitchId spine : sim.topology().dcs()[0].spines) {
    sim.faults().add_congestion(spine, 150.0, 0.002, minutes(30));
  }
  sim.run_for(hours(1) + minutes(10));
  std::printf("simulated %0.f minutes, %lu probes collected\n", to_seconds(sim.now()) / 60,
              static_cast<unsigned long>(sim.total_probes()));

  // --- the portal ----------------------------------------------------------
  net::Reactor reactor;
  net::HttpServer portal(reactor, net::SockAddr::loopback(0));

  analysis::Heatmap map(sim.topology(), DcId{0});
  map.load(sim.db().latest_pod_pair_window());
  analysis::PatternResult pattern = analysis::classify_pattern(map);

  portal.route("/heatmap.ppm", [&](const net::HttpRequest&) {
    return net::HttpResponse::ok(map.to_ppm(8), "image/x-portable-pixmap");
  });
  portal.route("/heatmap", [&](const net::HttpRequest&) {
    return net::HttpResponse::ok(map.ascii());
  });
  portal.route("/health", [&](const net::HttpRequest&) {
    std::string body = std::string("pattern: ") +
                       analysis::latency_pattern_name(pattern.pattern) + "\n";
    return net::HttpResponse::ok(body);
  });
  portal.route("/report", [&](const net::HttpRequest&) {
    return net::HttpResponse::ok(
        dsa::render_network_report(sim.db(), sim.topology(), &sim.services()));
  });
  portal.route("/", [&](const net::HttpRequest&) {
    return net::HttpResponse::ok(
        "pingmesh portal — /health /heatmap /heatmap.ppm /report\n");
  });
  std::printf("portal listening on 127.0.0.1:%u\n\n", portal.port());

  // --- be our own customer ---------------------------------------------------
  net::HttpClient client(reactor);
  bool failed = false;
  for (const char* path : {"/", "/health", "/heatmap", "/report", "/heatmap.ppm"}) {
    std::optional<net::HttpResult> result;
    client.get(net::SockAddr::loopback(portal.port()), path, 2000ms,
               [&](const net::HttpResult& r) { result = r; });
    reactor.run_until([&] { return result.has_value(); },
                      net::Reactor::Clock::now() + 3s);
    if (!result || !result->ok || result->response.status != 200) {
      std::printf("GET %s FAILED\n", path);
      failed = true;
      continue;
    }
    std::printf("GET %-12s -> %d, %zu bytes", path, result->response.status,
                result->response.body.size());
    if (std::string(path) == "/health") {
      std::printf("  [%s]", result->response.body.c_str());
    } else {
      std::printf("\n");
    }
  }

  // The injected spine congestion should be visible to every customer.
  std::printf("\nthe portal tells customers: %s (paper: \"Now our customers usually use\n"
              "the visualization to show that there is indeed an on-going network issue\")\n",
              analysis::latency_pattern_name(pattern.pattern));
  return (!failed && pattern.pattern == analysis::LatencyPattern::kSpineFailure) ? 0 : 1;
}
